"""Open-loop traffic engine: million-request load tests over a fleet.

The Clair Obscur paper measures interposition cost closed-loop — one
client, next request only after the last response (Table 6).  Production
traffic is *open-loop*: arrivals come on their own schedule whether or
not the server keeps up, which is what exposes queueing delay, the p99.9
tail, and the saturation knee.  This package supplies that missing axis:

- :mod:`~repro.traffic.config` — :class:`TrafficConfig`, the frozen,
  validating description of a load test (arrival process, rate ramp,
  tenant/request mix, fleet shape) that `RunConfig(traffic=...)` embeds;
- :mod:`~repro.traffic.schedule` — the seeded arrival-schedule
  generator: same seed ⇒ byte-identical schedule, by construction;
- :mod:`~repro.traffic.fleet` — drives real interposed server kernels
  multi-connection (the calibration pass and ``--serve-mode full``);
- :mod:`~repro.traffic.loadbalancer` — the virtual-time queueing fabric
  that levels the arrival stream into per-server worker queues using
  calibrated service times (the default ``--serve-mode model``);
- :mod:`~repro.traffic.engine` — shards a load test by server,
  runs shards (under the evaluation pipeline's cache/jobs machinery),
  and merges them into one :class:`~repro.traffic.slo.SLOReport`;
- :mod:`~repro.traffic.slo` — the ``METRICS_slo.json`` artifact.

Determinism is the headline guarantee: a fixed seed produces a
byte-identical arrival schedule and SLO report across engine tiers and
``--jobs`` counts.  Every quantity is integer nanoseconds / cycles; the
merge is commutative integer sums; percentiles are computed once, after
the merge.
"""

from repro.observability.spans import (ExemplarReservoir, TraceContext,
                                       merge_exemplar_docs)
from repro.traffic.config import TrafficConfig
from repro.traffic.schedule import ArrivalSchedule, generate_schedule
from repro.traffic.slo import SLOReport

__all__ = [
    "ArrivalSchedule",
    "ExemplarReservoir",
    "SLOReport",
    "TraceContext",
    "TrafficConfig",
    "generate_schedule",
    "merge_exemplar_docs",
]
