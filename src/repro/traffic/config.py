"""`TrafficConfig`: the frozen, validating description of a load test.

The config is to the traffic engine what ``record=``/``replay_from=``
are to the replay subsystem: a constructor-validated value object that
``RunConfig(traffic=...)`` embeds, with a canonical JSON-safe rendering
(:meth:`TrafficConfig.canonical`) that doubles as the pipeline cache-key
contribution and the provenance echo inside ``METRICS_slo.json``.

Everything here is plain data — the engine interprets it:

- **arrival** — the inter-arrival process: ``poisson`` (exponential
  gaps, the classic open-loop baseline), ``lognormal`` (bursty but
  light-tailed), ``pareto`` (heavy-tailed; the mix *Making "syscall" a
  Privilege not a Right* argues exposes per-transition cost models).
- **rate** — base offered rate in requests/second; 0 means *auto*:
  the engine resolves it to ~60 % of the calibrated native capacity
  before specs are created, so every mechanism faces the same schedule.
- **ramp** — per-stage rate multipliers; the schedule is divided into
  ``len(ramp)`` equal-request stages, stage *i* running at
  ``rate * ramp[i]``.  The saturation knee is read off this staircase.
- **tenants** / **mix** — weighted request attribution and body-size
  mix.  Mix keys are a kind (``small``/``medium``/``large``) or a
  tenant-scoped ``"tenant:kind"``, letting one tenant skew heavy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

ARRIVALS = ("poisson", "lognormal", "pareto")
SERVE_MODES = ("model", "full")
REQUEST_KINDS = ("small", "medium", "large")

#: Extra request-payload padding bytes per kind (the client-side body).
#: The simulated servers answer a fixed-size response regardless; kinds
#: differ in request parse size and therefore in service time.
KIND_PADDING = {"small": 0, "medium": 128, "large": 384}

DEFAULT_TENANTS = (("anchor", 8), ("batch", 1))
DEFAULT_MIX = (("small", 6), ("medium", 3), ("large", 1))
DEFAULT_RAMP = (1, 2, 4, 8, 16, 32)


def _check_weights(name: str, weights: Tuple[Tuple[str, int], ...]) -> None:
    if not weights:
        raise ValueError(f"traffic: {name} must be non-empty")
    seen = set()
    for key, weight in weights:
        if not isinstance(key, str) or not key:
            raise ValueError(f"traffic: {name} key {key!r} invalid")
        if key in seen:
            raise ValueError(f"traffic: duplicate {name} key {key!r}")
        seen.add(key)
        if not isinstance(weight, int) or weight <= 0:
            raise ValueError(
                f"traffic: {name} weight for {key!r} must be a positive "
                f"integer, got {weight!r}")


@dataclass(frozen=True)
class TrafficConfig:
    """One load test, fully described.  Frozen and validating: any
    instance that exists is runnable, and equal configs produce equal
    cache keys (tuples everywhere, no dict-order dependence)."""

    requests: int = 1_000_000
    rate: int = 0
    arrival: str = "poisson"
    servers: int = 4
    connections: int = 2048
    tenants: Tuple[Tuple[str, int], ...] = DEFAULT_TENANTS
    mix: Tuple[Tuple[str, int], ...] = DEFAULT_MIX
    ramp: Tuple[int, ...] = DEFAULT_RAMP
    queue_limit: int = 4096
    workers: int = 2
    calibration_requests: int = 400
    serve_mode: str = "model"
    slo_p99_ms: int = 2
    #: Per-request span tracing: when True every request carries a span
    #: tree and the report grows a rank-based exemplar section (slowest
    #: ``exemplars`` spans per (stage, tenant, kind), earliest
    #: ``shed_exemplars`` shed spans per group) — see
    #: :mod:`repro.observability.spans` and ``python -m repro sloexplain``.
    spans: bool = False
    exemplars: int = 4
    shed_exemplars: int = 16

    def __post_init__(self) -> None:
        if not isinstance(self.requests, int) or self.requests <= 0:
            raise ValueError("traffic: requests must be a positive integer")
        if not isinstance(self.rate, int) or self.rate < 0:
            raise ValueError("traffic: rate must be >= 0 (0 = auto)")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"traffic: unknown arrival {self.arrival!r} "
                f"(choose from {', '.join(ARRIVALS)})")
        if self.serve_mode not in SERVE_MODES:
            raise ValueError(
                f"traffic: unknown serve_mode {self.serve_mode!r} "
                f"(choose from {', '.join(SERVE_MODES)})")
        if not isinstance(self.servers, int) or self.servers <= 0:
            raise ValueError("traffic: servers must be a positive integer")
        if not isinstance(self.connections, int) or \
                self.connections < self.servers:
            raise ValueError("traffic: connections must be an integer "
                             ">= servers")
        if not isinstance(self.workers, int) or self.workers <= 0:
            raise ValueError("traffic: workers must be a positive integer")
        if not isinstance(self.queue_limit, int) or self.queue_limit <= 0:
            raise ValueError("traffic: queue_limit must be positive")
        if not isinstance(self.calibration_requests, int) or \
                self.calibration_requests <= 0:
            raise ValueError("traffic: calibration_requests must be "
                             "positive")
        if not isinstance(self.slo_p99_ms, int) or self.slo_p99_ms <= 0:
            raise ValueError("traffic: slo_p99_ms must be positive")
        if not isinstance(self.spans, bool):
            raise ValueError("traffic: spans must be a bool")
        if not isinstance(self.exemplars, int) or self.exemplars <= 0:
            raise ValueError("traffic: exemplars must be positive")
        if not isinstance(self.shed_exemplars, int) or \
                self.shed_exemplars < 0:
            raise ValueError("traffic: shed_exemplars must be >= 0")
        # Canonicalize sequence fields to tuples (lists accepted in).
        object.__setattr__(self, "tenants",
                           tuple((str(k), int(w)) for k, w in self.tenants))
        object.__setattr__(self, "mix",
                           tuple((str(k), int(w)) for k, w in self.mix))
        object.__setattr__(self, "ramp", tuple(int(m) for m in self.ramp))
        _check_weights("tenants", self.tenants)
        _check_weights("mix", self.mix)
        tenant_names = {name for name, _ in self.tenants}
        for key, _weight in self.mix:
            kind = key.rsplit(":", 1)[-1]
            if kind not in REQUEST_KINDS:
                raise ValueError(
                    f"traffic: mix kind {kind!r} unknown "
                    f"(choose from {', '.join(REQUEST_KINDS)})")
            if ":" in key and key.rsplit(":", 1)[0] not in tenant_names:
                raise ValueError(
                    f"traffic: mix entry {key!r} names an unknown tenant")
        if not self.ramp or any(m <= 0 for m in self.ramp):
            raise ValueError("traffic: ramp must be non-empty positive "
                             "multipliers")

    def mix_for(self, tenant: str) -> Tuple[Tuple[str, int], ...]:
        """The kind mix *tenant* draws from: tenant-scoped entries win
        over unscoped ones when any exist for this tenant."""
        scoped = tuple((key.rsplit(":", 1)[-1], weight)
                       for key, weight in self.mix
                       if key.startswith(tenant + ":"))
        if scoped:
            return scoped
        return tuple((key, weight) for key, weight in self.mix
                     if ":" not in key)

    def canonical(self) -> Dict:
        """Deterministic JSON-safe rendering: the cache-key contribution
        and the ``traffic`` echo in METRICS_slo.json.  ``rate`` must be
        resolved (non-zero) first — an auto rate is an input convenience,
        never an artifact value."""
        if self.rate == 0:
            raise ValueError("traffic: canonical() requires a resolved "
                             "rate (use resolve_rate first)")
        return {
            "requests": self.requests,
            "rate": self.rate,
            "arrival": self.arrival,
            "servers": self.servers,
            "connections": self.connections,
            "tenants": [list(t) for t in self.tenants],
            "mix": [list(m) for m in self.mix],
            "ramp": list(self.ramp),
            "queue_limit": self.queue_limit,
            "workers": self.workers,
            "calibration_requests": self.calibration_requests,
            "serve_mode": self.serve_mode,
            "slo_p99_ms": self.slo_p99_ms,
            "spans": self.spans,
            "exemplars": self.exemplars,
            "shed_exemplars": self.shed_exemplars,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "TrafficConfig":
        """Inverse of :meth:`canonical` (also accepts partial dicts)."""
        kwargs = dict(doc)
        for key in ("tenants", "mix"):
            if key in kwargs:
                kwargs[key] = tuple((k, w) for k, w in kwargs[key])
        if "ramp" in kwargs:
            kwargs["ramp"] = tuple(kwargs["ramp"])
        return cls(**kwargs)

    def with_rate(self, rate: int) -> "TrafficConfig":
        """A copy with the auto rate resolved to a concrete value."""
        doc = {f: getattr(self, f) for f in self.__dataclass_fields__}
        doc["rate"] = rate
        return TrafficConfig(**doc)
