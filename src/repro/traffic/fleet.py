"""Driving real interposed server kernels with open-loop traffic.

Two jobs, one substrate:

- **calibration** — measure per-request-kind *service time* on a real
  multiconn server kernel under the mechanism being tested: a single
  connection, requests driven serially, simulated-cycle deltas per
  round trip.  Because every engine tier retires the identical cycle
  stream (the PR 7 invariant), the table is tier-invariant, which is
  what lets the model fabric inherit the determinism guarantee.
- **full serve** (``--serve-mode full``) — drive *every* scheduled
  request through the kernels.  The kernel's admission seam
  (``kernel.admission``, consulted at scheduler-round boundaries)
  releases arrivals when their virtual due time arrives, jumping the
  cycle clock forward over idle gaps; completion is observed when a
  connection's response bytes land.  Ground truth for the model, at
  real-execution cost.

Virtual time is cycle-anchored: ``due_cycles = epoch + t_ns * CLOCK_HZ
// 1e9``; latency is ``(completion_cycles - due_cycles)`` converted
back to integer nanoseconds.  Per-connection serialization (one
outstanding request per keep-alive connection) is enforced host-side —
that queue wait is measured latency, exactly as in the model fabric.
"""

from __future__ import annotations

import statistics
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.cpu.cycles import CLOCK_HZ
from repro.observability.analyzers.latency import LogHistogram
from repro.traffic.config import TrafficConfig
from repro.workloads.clients import TrafficSource
from repro.traffic.loadbalancer import DEPTH_SAMPLES, server_result_doc
from repro.traffic.schedule import NS, ArrivalSchedule

#: Request-payload padding per kind.  Redis runs smaller pads: its
#: 256-byte receive buffer must take base request + pad in one read so
#: requests never split across recvfrom calls.
DEFAULT_KIND_PADDING = {"small": 0, "medium": 128, "large": 384}
REDIS_KIND_PADDING = {"small": 0, "medium": 64, "large": 128}

#: Batched host-side connects: the listener backlog is 128, so the
#: fleet connects in sub-backlog batches with an accept drain between.
CONNECT_BATCH = 64

#: Kernel steps granted per outer drive slice in full-serve mode.
DRIVE_SLICE_STEPS = 5_000_000


def kind_padding(workload: str) -> Dict[str, int]:
    return REDIS_KIND_PADDING if workload == "redis" \
        else DEFAULT_KIND_PADDING


def request_payload(workload: str, base: bytes, kind: str) -> bytes:
    """The wire bytes for one request of *kind* (pad with filler the
    servers ignore but must receive and copy)."""
    return base + b"x" * kind_padding(workload)[kind]


def response_length(workload: str, params: Dict[str, int]) -> int:
    """Exact response bytes per request — completion detection."""
    if workload == "redis":
        return 32
    return 128 + (4096 if params.get("file_kb", 0) else 0)


def traffic_workload_params(traffic: TrafficConfig
                            ) -> Tuple[Tuple[str, int], ...]:
    """Installer params for a fleet server kernel: event-loop serving
    with the configured worker count."""
    return (("multiconn", 1), ("workers", traffic.workers))


def cycles_of_ns(t_ns: int) -> int:
    return t_ns * CLOCK_HZ // NS


def ns_of_cycles(cycles: int) -> int:
    return cycles * NS // CLOCK_HZ


# ------------------------------------------------------------- calibration


#: (mechanism, workload, seed, workers, kinds...) → service table doc.
_CALIBRATION_CACHE: Dict[Tuple, Dict] = {}


def calibrate_service_table(mechanism: str, workload: str,
                            traffic: TrafficConfig, seed: int) -> Dict:
    """Measure per-kind service cycles on a real interposed kernel.

    Returns a JSON-safe doc: ``{"kinds": {kind: {"cycles": c, "ns": n,
    "samples": m}}}``.  Keyed off the *base* seed (never the shard), so
    every shard of a sharded run computes — or re-uses — the identical
    table.
    """
    kinds = tuple(sorted({key.rsplit(":", 1)[-1]
                          for key, _ in traffic.mix}))
    key = (mechanism, workload, seed, traffic.workers,
           traffic.calibration_requests, kinds)
    cached = _CALIBRATION_CACHE.get(key)
    if cached is not None:
        return cached

    from repro.runapi import RunConfig, prepare

    config = RunConfig(mechanism=mechanism, workload=workload, seed=seed,
                       params=traffic_workload_params(traffic))
    prepared = prepare(config)
    prepared.boot()
    kernel, spec = prepared.kernel, prepared.spec
    expected = response_length(workload, dict(config.params))
    connection = kernel.net.connect(spec.port)
    kernel.run(max_steps=400_000)  # accept + epoll registration

    per_kind = max(8, traffic.calibration_requests // max(1, len(kinds)))
    table: Dict[str, Dict] = {}
    for kind in kinds:
        payload = request_payload(workload, spec.payload, kind)
        # The per-kind syscall sub-span profile rides on the existing
        # bus events: a LatencyAnalyzer observes the calibration drive
        # (sinks are observe-only, so the measured cycles are
        # unperturbed — the lockstep property).
        from repro.observability.analyzers.latency import LatencyAnalyzer
        from repro.observability.spans import syscall_profile

        analyzer = LatencyAnalyzer()
        kernel.bus.attach(analyzer)
        samples: List[int] = []
        for index in range(per_kind + 4):  # first 4 are warmup
            before = kernel.cycles.cycles
            connection.client_send(payload)
            kernel.run(max_steps=400_000)
            response = connection.client_recv_all()
            if len(response) != expected:
                raise RuntimeError(
                    f"calibration: {workload}/{mechanism} answered "
                    f"{len(response)}B for a {kind} request "
                    f"(expected {expected}B)")
            samples.append(kernel.cycles.cycles - before)
        kernel.bus.detach(analyzer)
        steady = samples[4:]
        cycles = statistics.median_low(steady)
        table[kind] = {"cycles": cycles, "ns": ns_of_cycles(cycles),
                       "samples": len(steady),
                       "syscalls": syscall_profile(analyzer, per_kind + 4)}
    connection.client_close()
    kernel.run(max_steps=200_000)
    doc = {"mechanism": mechanism, "workload": workload, "kinds": table}
    _CALIBRATION_CACHE[key] = doc
    return doc


def service_ns_table(calibration: Dict, schedule: ArrivalSchedule
                     ) -> Dict[Tuple[int, int], int]:
    """Flatten a calibration doc into the fabric's ``(tenant, kind) →
    service_ns`` lookup (service time is kind-determined; the tenant
    axis exists so future per-tenant cost models slot in)."""
    kinds = calibration["kinds"]
    return {(t, k): int(kinds[kind_name]["ns"])
            for t in range(len(schedule.tenant_names))
            for k, kind_name in enumerate(schedule.kind_names)}


def resolve_rate(traffic: TrafficConfig, workload: str,
                 seed: int) -> TrafficConfig:
    """Resolve ``rate=0`` (auto) to a concrete base rate.

    Auto rate targets 10 % of the *native* fleet capacity, so the
    default ramp (1..32×) sweeps 10 %–320 % and the knee lands
    mid-staircase for every mechanism under the *same* schedule —
    resolution uses only the native calibration, never the mechanism
    under test, to keep the schedule mechanism-independent.
    """
    if traffic.rate:
        return traffic
    calibration = calibrate_service_table("native", workload, traffic, seed)
    weight_total = 0
    weighted_ns = 0
    for key, weight in traffic.mix:
        kind = key.rsplit(":", 1)[-1]
        weighted_ns += int(calibration["kinds"][kind]["ns"]) * weight
        weight_total += weight
    mean_ns = max(1, weighted_ns // weight_total)
    capacity = traffic.servers * traffic.workers * NS // mean_ns
    return traffic.with_rate(max(1, capacity // 10))


# ------------------------------------------------------------- full serve


class RoundAdmission:
    """``kernel.admission`` driver: open-loop arrivals into live conns.

    Consulted at every scheduler-round boundary; returns True when it
    changed the world (delivered a request, collected a response, or
    jumped the idle clock), which the scheduler counts as progress.
    """

    def __init__(self, kernel, connections: Dict[int, object],
                 arrivals: List[Tuple[int, int, int, int, int, int]],
                 payloads: Dict[int, bytes], expected_len: int,
                 epoch_cycles: int, queue_limit: int, stages: int,
                 span_ns: int, server: int = 0, trace=None):
        self.kernel = kernel
        self.server = server
        self.connections = connections
        #: (t_ns, stage, tenant, kind, conn, index) in arrival order.
        self.arrivals = arrivals
        self.payloads = payloads
        self.expected_len = expected_len
        self.epoch = epoch_cycles
        self.queue_limit = queue_limit
        self._pos = 0
        self._queued = 0
        self.busy: Dict[int, Tuple[int, int, int, int, int, int]] = {}
        self.conn_queue: Dict[int, deque] = {}
        #: Optional :class:`repro.observability.spans.TraceContext`.
        self.trace = trace
        # index -> [admission_cycles, release_cycles, conn_wait_cycles];
        # conn_wait appended at send time, so a 2-entry list marks a
        # request still parked on its connection's queue.
        self._span_meta: Dict[int, List[int]] = {}

        self.offered: Dict[Tuple[int, int, int], int] = {}
        self.completed: Dict[Tuple[int, int, int], int] = {}
        self.shed: Dict[Tuple[int, int, int], int] = {}
        self.latency: Dict[Tuple[int, int, int], LogHistogram] = {}
        self.stage_max_depth = [0] * stages
        self.depth_series: List[Tuple[int, int, int]] = []
        self._sample_every = max(1, span_ns // DEPTH_SAMPLES)
        self._next_sample_ns = 0

    @property
    def done(self) -> bool:
        return self._pos >= len(self.arrivals) and not self.busy \
            and self._queued == 0

    def on_round_boundary(self, retired: int) -> bool:
        progressed = self._collect()
        now = self.kernel.cycles.cycles
        progressed |= self._release(now)
        if not progressed and not self.busy \
                and self._pos < len(self.arrivals):
            # Fleet idle, next arrival in the future: jump virtual time
            # (blocked threads burn no cycles, so the gap is free).
            target = self.epoch + cycles_of_ns(self.arrivals[self._pos][0])
            if target > now:
                self.kernel.cycles.cycles = target
            progressed = self._release(self.kernel.cycles.cycles)
        self._sample()
        return progressed

    # ---------------------------------------------------------- internals

    def _collect(self) -> bool:
        """Harvest completed responses (exactly ``expected_len`` bytes
        per request thanks to per-connection serialization)."""
        collected = False
        now = self.kernel.cycles.cycles
        for conn_id in list(self.busy):
            connection = self.connections[conn_id]
            if sum(len(c) for c in connection.to_client) < self.expected_len:
                continue
            connection.client_recv_all()
            due_cycles, stage, tenant, kind, _conn, index = \
                self.busy.pop(conn_id)
            key = (stage, tenant, kind)
            self.completed[key] = self.completed.get(key, 0) + 1
            hist = self.latency.get(key)
            if hist is None:
                hist = self.latency[key] = LogHistogram()
            latency_ns = ns_of_cycles(max(0, now - due_cycles))
            hist.record(latency_ns)
            if self.trace is not None and index >= 0:
                meta = self._span_meta.pop(index)
                # The span's service stage is the closing remainder, so
                # cycle→ns floor rounding can never leave a residual
                # (floor(a)+floor(b) <= floor(a+b) keeps it >= 0).
                self.trace.record(
                    index=index, conn=conn_id, stage=stage, tenant=tenant,
                    kind=kind, arrival_ns=ns_of_cycles(due_cycles
                                                       - self.epoch),
                    latency_ns=latency_ns,
                    admission_ns=ns_of_cycles(meta[0]),
                    conn_wait_ns=ns_of_cycles(meta[2]), ts=now)
            collected = True
            pending = self.conn_queue.get(conn_id)
            if pending:
                request = pending.popleft()
                if not pending:
                    del self.conn_queue[conn_id]
                self._queued -= 1
                self._send(conn_id, request, now)
        return collected

    def _release(self, now: int) -> bool:
        released = False
        while self._pos < len(self.arrivals):
            t_ns, stage, tenant, kind, conn_id, index = \
                self.arrivals[self._pos]
            due_cycles = self.epoch + cycles_of_ns(t_ns)
            if due_cycles > now:
                break
            self._pos += 1
            key = (stage, tenant, kind)
            self.offered[key] = self.offered.get(key, 0) + 1
            request = (due_cycles, stage, tenant, kind, conn_id, index)
            tracing = self.trace is not None and index >= 0
            if tracing:
                # Admission wait: the scheduler-round granularity of the
                # admission seam — release happens at the first round
                # boundary at/after the virtual due time.
                self._span_meta[index] = [now - due_cycles, now]
            if conn_id in self.busy:
                if self._queued >= self.queue_limit:
                    self.shed[key] = self.shed.get(key, 0) + 1
                    if tracing:
                        admission = self._span_meta.pop(index)[0]
                        self.trace.record(
                            index=index, conn=conn_id, stage=stage,
                            tenant=tenant, kind=kind,
                            arrival_ns=ns_of_cycles(due_cycles - self.epoch),
                            latency_ns=ns_of_cycles(admission),
                            admission_ns=ns_of_cycles(admission),
                            shed=True, ts=now)
                    continue
                self.conn_queue.setdefault(conn_id, deque()).append(request)
                self._queued += 1
                if self._queued > self.stage_max_depth[stage]:
                    self.stage_max_depth[stage] = self._queued
            else:
                self._send(conn_id, request, now)
            released = True
        return released

    def _send(self, conn_id: int, request: Tuple, now: int) -> None:
        if self.trace is not None and request[5] >= 0:
            meta = self._span_meta[request[5]]
            meta.append(now - meta[1])  # conn-wait: release -> send
        self.busy[conn_id] = request
        self.connections[conn_id].client_send(self.payloads[request[3]])

    def record_stalled(self, now: int) -> None:
        """Span-record every unfinished request as shed+stalled — called
        by stall-shed detection *before* the tallies are cleared, so the
        flight-recorder dump carries the wedged requests' partial
        timelines (how far each one got before the fleet died)."""
        if self.trace is None:
            return
        for conn_id, request in sorted(self.busy.items()):
            due_cycles, stage, tenant, kind, _conn, index = request
            meta = self._span_meta.pop(index, None)
            if index < 0 or meta is None:
                continue
            self.trace.record(
                index=index, conn=conn_id, stage=stage, tenant=tenant,
                kind=kind, arrival_ns=ns_of_cycles(due_cycles - self.epoch),
                latency_ns=ns_of_cycles(max(0, now - due_cycles)),
                admission_ns=ns_of_cycles(meta[0]),
                conn_wait_ns=ns_of_cycles(meta[2]),
                shed=True, stalled=True, ts=now)
        for conn_id, pending in sorted(self.conn_queue.items()):
            for request in pending:
                due_cycles, stage, tenant, kind, _conn, index = request
                meta = self._span_meta.pop(index, None)
                if index < 0 or meta is None:
                    continue
                # Never sent: still waiting on the connection since its
                # release — conn-wait runs to the stall point.
                self.trace.record(
                    index=index, conn=conn_id, stage=stage, tenant=tenant,
                    kind=kind,
                    arrival_ns=ns_of_cycles(due_cycles - self.epoch),
                    latency_ns=ns_of_cycles(max(0, now - due_cycles)),
                    admission_ns=ns_of_cycles(meta[0]),
                    conn_wait_ns=ns_of_cycles(max(0, now - meta[1])),
                    shed=True, stalled=True, ts=now)

    def _sample(self) -> None:
        now_ns = ns_of_cycles(max(0, self.kernel.cycles.cycles - self.epoch))
        while self._next_sample_ns <= now_ns:
            sample = (self._next_sample_ns, self._queued, len(self.busy))
            self.depth_series.append(sample)
            if self.kernel.bus.enabled:
                from repro.observability.events import QueueDepthSample

                self.kernel.bus.emit(QueueDepthSample(
                    ts=self.kernel.cycles.cycles, pid=0, tid=0,
                    server=self.server, depth=sample[1],
                    in_flight=sample[2], t_ns=sample[0]))
            self._next_sample_ns += self._sample_every


def connect_fleet(kernel, port: int, conn_ids: List[int]) -> Dict[int, object]:
    """Open host connections in sub-backlog batches, draining accepts
    between batches so the listener backlog (128) never overflows."""
    connections: Dict[int, object] = {}
    for start in range(0, len(conn_ids), CONNECT_BATCH):
        for conn_id in conn_ids[start:start + CONNECT_BATCH]:
            connections[conn_id] = kernel.net.connect(port)
        kernel.run(max_steps=400_000)
    return connections


def run_server_full(mechanism: str, workload: str, traffic: TrafficConfig,
                    seed: int, server: int,
                    schedule: ArrivalSchedule, trace=None) -> Dict:
    """Serve one fleet server's arrival subsequence on a real kernel.

    Returns the same shard-result doc shape as the model fabric's
    :func:`~repro.traffic.loadbalancer.simulate_server`.  *trace* (a
    :class:`repro.observability.spans.TraceContext`) enables span
    capture; its flight-recorder ring is dumped automatically when
    stall-shed detection fires.
    """
    from repro.runapi import RunConfig, prepare

    config = RunConfig(mechanism=mechanism, workload=workload,
                       seed=seed + server,
                       params=traffic_workload_params(traffic))
    prepared = prepare(config)
    prepared.boot()
    kernel, spec = prepared.kernel, prepared.spec
    expected = response_length(workload, dict(config.params))

    conn_ids = [c for c in range(traffic.connections)
                if c % traffic.servers == server]
    connections = connect_fleet(kernel, spec.port, conn_ids)

    # Warm the serve path (JIT tiers, caches) before the epoch anchors.
    warm = connections[conn_ids[0]]
    payloads = {k: request_payload(workload, spec.payload, kind_name)
                for k, kind_name in enumerate(schedule.kind_names)}
    for _ in range(4):
        warm.client_send(payloads[0])
        kernel.run(max_steps=400_000)
        warm.client_recv_all()

    if trace is not None:
        # The kernel exists only inside this call: late-bind the bus so
        # RequestSpan events reach any attached sinks (null-sink guard
        # still applies at every emit).
        trace.bus = kernel.bus
    arrivals = [(t_ns, schedule.stage_of(index), tenant, kind, conn, index)
                for index, t_ns, tenant, kind, conn
                in schedule.iter_requests(server)]
    admission = RoundAdmission(
        kernel, connections, arrivals, payloads, expected,
        epoch_cycles=kernel.cycles.cycles, queue_limit=traffic.queue_limit,
        stages=len(traffic.ramp), span_ns=max(1, schedule.span_ns()),
        server=server, trace=trace)
    kernel.admission = admission
    try:
        stalled = 0
        while not admission.done:
            before = admission._pos, len(admission.busy), admission._queued
            kernel.run(max_steps=DRIVE_SLICE_STEPS)
            after = admission._pos, len(admission.busy), admission._queued
            stalled = stalled + 1 if after == before else 0
            if stalled >= 3:
                # Wedged fleet (e.g. a mechanism killed the workers):
                # count every unfinished request as shed.
                admission.record_stalled(kernel.cycles.cycles)
                for request in list(admission.busy.values()):
                    key = (request[1], request[2], request[3])
                    admission.shed[key] = admission.shed.get(key, 0) + 1
                admission.busy.clear()
                for pending in admission.conn_queue.values():
                    for request in pending:
                        key = (request[1], request[2], request[3])
                        admission.shed[key] = admission.shed.get(key, 0) + 1
                admission.conn_queue.clear()
                admission._queued = 0
                admission._pos = len(admission.arrivals)
                if trace is not None:
                    from repro.observability.spans import flight_dir
                    import os as _os

                    trace.flight.dump(
                        _os.path.join(
                            flight_dir(),
                            f"stallshed-{mechanism}-{workload}"
                            f"-s{server}.json"),
                        reason="stall-shed")
                break
    finally:
        kernel.admission = None
    for connection in connections.values():
        connection.client_close()
    kernel.run(max_steps=400_000)
    if kernel.bus.enabled:
        from repro.observability.events import TrafficStageStats

        base_rate = traffic.rate or 0
        for stage, multiplier in enumerate(traffic.ramp):
            stage_hist = LogHistogram()
            for (s, _t, _k), hist in admission.latency.items():
                if s == stage:
                    stage_hist.merge(hist)
            kernel.bus.emit(TrafficStageStats(
                ts=kernel.cycles.cycles, pid=0, tid=0, stage=stage,
                rate=base_rate * multiplier,
                offered=sum(n for (s, _t, _k), n
                            in admission.offered.items() if s == stage),
                completed=sum(n for (s, _t, _k), n
                              in admission.completed.items() if s == stage),
                shed=sum(n for (s, _t, _k), n
                         in admission.shed.items() if s == stage),
                p99_ns=stage_hist.percentile(99),
                max_depth=admission.stage_max_depth[stage]))
    return server_result_doc(server, admission.offered, admission.completed,
                             admission.shed, admission.latency,
                             admission.stage_max_depth,
                             admission.depth_series)


class OpenLoopSource(TrafficSource):
    """:class:`~repro.workloads.clients.TrafficSource` over the
    full-serve fleet path — one server kernel driven by a schedule slice
    through the admission seam.  The open-loop counterpart of
    :class:`~repro.workloads.clients.KeepAliveSource`: ``drive`` runs
    the server's whole arrival subsequence."""

    def __init__(self, mechanism: str, workload: str,
                 traffic: TrafficConfig, seed: int, server: int,
                 schedule: ArrivalSchedule):
        self.mechanism = mechanism
        self.workload = workload
        self.traffic = traffic
        self.seed = seed
        self.server = server
        self.schedule = schedule
        self.result_doc: Optional[Dict] = None

    def warmup(self, rounds: int = 2) -> None:
        return None  # run_server_full warms before anchoring the epoch

    def drive(self, requests: int):
        from repro.workloads.clients import DriveResult

        self.result_doc = run_server_full(
            self.mechanism, self.workload, self.traffic, self.seed,
            self.server, self.schedule)
        completed = sum(self.result_doc["completed"].values())
        shed = sum(self.result_doc["shed"].values())
        return DriveResult(requests=completed, cycles=0, failures=shed)

    def exchange(self, limit=None):
        raise NotImplementedError(
            "OpenLoopSource drives whole schedules; per-batch exchange "
            "is a closed-loop (KeepAliveSource) operation")

    def close(self) -> None:
        return None
