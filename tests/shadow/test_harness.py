"""The dark-launch harness: lockstep, forced divergence, budgets, bundle."""

import json

import pytest

from repro.shadow import (FAULT_SIDES, PROMOTE, ROLLBACK, ShadowConfig,
                          run_shadow)


class TestShadowConfig:
    def test_mechanisms_canonicalized_case_insensitively(self):
        config = ShadowConfig(primary="LAZYPOLINE", shadow="k23-ultra",
                              workload="nginx")
        assert config.primary == "lazypoline"
        assert config.shadow == "K23-ultra"

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            ShadowConfig(primary="frobnicator", shadow="native",
                         workload="stress")

    def test_bad_fault_side_rejected(self):
        with pytest.raises(ValueError, match="fault_side"):
            ShadowConfig(primary="native", shadow="native",
                         workload="stress", fault_side="left")
        assert FAULT_SIDES == ("none", "both", "primary", "shadow")

    def test_fault_side_requires_fault_seed(self):
        with pytest.raises(ValueError, match="fault_seed"):
            ShadowConfig(primary="native", shadow="native",
                         workload="stress", fault_side="shadow")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            ShadowConfig(primary="native", shadow="native",
                         workload="stress", budget=-1)


class TestLockstepProperty:
    """primary == shadow must always promote with zero divergences —
    on both interpreter modes."""

    @pytest.mark.parametrize("block_cache", [True, False])
    def test_batch_lockstep_clean(self, block_cache):
        report = run_shadow(ShadowConfig(
            primary="zpoline-default", shadow="zpoline-default",
            workload="stress", seed=9, params=(("iterations", 10),),
            block_cache=block_cache))
        assert report.verdict == PROMOTE
        assert report.divergence_count == 0

    @pytest.mark.parametrize("block_cache", [True, False])
    def test_server_lockstep_clean(self, block_cache):
        report = run_shadow(ShadowConfig(
            primary="lazypoline", shadow="lazypoline",
            workload="redis", seed=5, requests=8,
            block_cache=block_cache))
        assert report.verdict == PROMOTE
        assert report.divergence_count == 0
        assert report.requests == 8
        assert report.failures == 0


class TestCrossMechanism:
    def test_conformant_pair_promotes(self):
        report = run_shadow(ShadowConfig(
            primary="lazypoline", shadow="K23-ultra",
            workload="nginx", seed=7, requests=8))
        assert report.promoted
        assert report.divergence_count == 0

    def test_latency_deltas_populated(self):
        report = run_shadow(ShadowConfig(
            primary="lazypoline", shadow="zpoline-ultra",
            workload="redis", seed=5, requests=8))
        delta = report.latency_delta
        assert delta["unit"] == "cycles"
        assert delta["per_syscall"]
        both_sided = [entry for entry in delta["per_syscall"].values()
                      if entry["primary"] and entry["shadow"]]
        assert both_sided
        assert all("delta_p50" in entry and "delta_p99" in entry
                   for entry in both_sided)

    def test_symmetric_fault_schedule_is_behavior_invariant(self):
        """The same seeded schedule on both sides must not diverge a
        conformant pair — injection counting is mechanism-invariant."""
        report = run_shadow(ShadowConfig(
            primary="lazypoline", shadow="K23-ultra",
            workload="redis", seed=5, requests=8,
            fault_seed=11, fault_side="both"))
        assert report.promoted
        assert report.divergence_count == 0


class TestForcedDivergence:
    def test_one_sided_fault_rolls_back_with_bundle(self, tmp_path):
        bundle_dir = tmp_path / "bundle"
        report = run_shadow(ShadowConfig(
            primary="zpoline-default", shadow="zpoline-default",
            workload="redis", seed=5, requests=16,
            fault_seed=11, fault_side="shadow",
            bundle_dir=str(bundle_dir)))
        assert report.verdict == ROLLBACK
        assert report.divergence_count > 0
        assert report.bundle_path == str(bundle_dir)
        for name in ("report.json", "tracediff.json", "latency_deltas.json",
                     "analyzers.json", "primary.trace.json",
                     "shadow.trace.json"):
            assert (bundle_dir / name).exists(), name
        doc = json.loads((bundle_dir / "report.json").read_text())
        assert doc["verdict"] == ROLLBACK
        assert doc["divergence_count"] == report.divergence_count
        tracediff = json.loads((bundle_dir / "tracediff.json").read_text())
        assert tracediff["divergences"]
        assert tracediff["earliest"] is not None
        assert tracediff["earliest"]["primary_context"]

    def test_divergences_emitted_on_primary_bus(self):
        """Every mismatch is a ShadowDivergence event an attached sink
        can observe (the report's list is the DivergenceSink snapshot)."""
        report = run_shadow(ShadowConfig(
            primary="zpoline-default", shadow="zpoline-default",
            workload="redis", seed=5, requests=16,
            fault_seed=11, fault_side="shadow"))
        assert report.divergences
        entry = report.divergences[0]
        assert entry["primary"] == "zpoline-default"
        assert entry["shadow"] == "zpoline-default"
        assert entry["kind"] in ("response", "trace", "exit")

    def test_budget_absorbs_exactly_that_many_divergences(self):
        base = dict(primary="zpoline-default", shadow="zpoline-default",
                    workload="redis", seed=5, requests=16,
                    fault_seed=11, fault_side="shadow")
        over = run_shadow(ShadowConfig(**base))
        count = over.divergence_count
        assert count > 0
        at_budget = run_shadow(ShadowConfig(**base, budget=count))
        assert at_budget.verdict == PROMOTE
        under = run_shadow(ShadowConfig(**base, budget=count - 1))
        assert under.verdict == ROLLBACK

    def test_divergence_dumps_span_flight_ring(self, tmp_path):
        """The first divergence freezes the span flight recorder: the
        bundle gains a flight dump whose records cover the exchanges the
        mirrored source completed before things went wrong."""
        bundle_dir = tmp_path / "bundle"
        report = run_shadow(ShadowConfig(
            primary="zpoline-default", shadow="zpoline-default",
            workload="redis", seed=5, requests=16,
            fault_seed=11, fault_side="shadow",
            bundle_dir=str(bundle_dir)))
        assert report.verdict == ROLLBACK
        assert report.flight_path is not None
        assert report.to_dict()["flight_path"] == report.flight_path
        doc = json.loads(open(report.flight_path).read())
        assert doc["reason"].startswith("shadow-divergence")
        assert doc["spans"]
        for record in doc["spans"]:
            assert record["id"].startswith("x-")
            assert record["end_cycles"] >= record["start_cycles"]

    def test_batch_run_has_no_flight_dump(self):
        # Batch workloads drive no TrafficSource, so the flight ring
        # stays empty and no dump is written even on divergence.
        report = run_shadow(ShadowConfig(
            primary="zpoline-default", shadow="zpoline-default",
            workload="cat", seed=9, fault_seed=7, fault_side="primary"))
        assert report.verdict == ROLLBACK
        assert report.flight_path is None

    def test_clean_run_writes_no_bundle(self, tmp_path):
        bundle_dir = tmp_path / "bundle"
        report = run_shadow(ShadowConfig(
            primary="lazypoline", shadow="lazypoline",
            workload="stress", seed=3, params=(("iterations", 8),),
            bundle_dir=str(bundle_dir)))
        assert report.promoted
        assert report.bundle_path is None
        assert not bundle_dir.exists()


class TestBatchDivergenceChannels:
    def test_batch_one_sided_fault_detected(self):
        """Faults on one side of a batch pair surface through the
        normalized-trace (and possibly exit-status) channels."""
        report = run_shadow(ShadowConfig(
            primary="zpoline-default", shadow="zpoline-default",
            workload="cat", seed=9, fault_seed=7, fault_side="primary"))
        assert report.verdict == ROLLBACK
        assert report.divergence_count > 0
