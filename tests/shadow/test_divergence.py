"""Divergence detection: normalized traces, budgets, verdicts."""

import pytest

from repro.shadow import (PROMOTE, ROLLBACK, diff_normalized,
                          normalized_trace, verdict_for)
from repro.shadow.divergence import describe_divergence, divergence_context


class TestVerdictBudget:
    """The budget is inclusive: count <= budget promotes."""

    def test_zero_budget_zero_divergences_promotes(self):
        assert verdict_for(0, 0) == PROMOTE

    def test_zero_budget_any_divergence_rolls_back(self):
        assert verdict_for(1, 0) == ROLLBACK

    def test_exactly_at_budget_promotes(self):
        assert verdict_for(3, 3) == PROMOTE

    def test_one_over_budget_rolls_back(self):
        assert verdict_for(4, 3) == ROLLBACK

    def test_under_budget_promotes(self):
        assert verdict_for(2, 5) == PROMOTE

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            verdict_for(0, -1)


def _kernel_after_stress(seed, mechanism="zpoline-default"):
    from repro.api import RunConfig, prepare

    prepared = prepare(RunConfig(mechanism=mechanism, workload="stress",
                                 seed=seed, params=(("iterations", 8),)))
    process = prepared.spawn()
    prepared.kernel.run_process(process, max_steps=5_000_000)
    return prepared.kernel, process


class TestNormalizedTrace:
    def test_header_is_mechanism_free(self):
        kernel, process = _kernel_after_stress(3)
        records = normalized_trace(kernel, start=process.premain_log_len)
        header = records[0]
        assert header["type"] == "TraceMeta"
        assert "mechanism" not in header

    def test_same_run_diffs_clean_against_itself(self):
        kernel, process = _kernel_after_stress(3)
        records = normalized_trace(kernel, start=process.premain_log_len)
        assert diff_normalized(records, records) == []

    def test_cross_mechanism_app_projection_identical(self):
        """The app-observable projection is the conformance property —
        different mechanisms, same seed, identical normalized records."""
        ka, pa = _kernel_after_stress(3, "zpoline-default")
        kb, pb = _kernel_after_stress(3, "lazypoline")
        a = normalized_trace(ka, start=pa.premain_log_len)
        b = normalized_trace(kb, start=pb.premain_log_len)
        assert diff_normalized(a, b) == []

    def test_start_slices_off_premain(self):
        kernel, process = _kernel_after_stress(3)
        full = normalized_trace(kernel)
        sliced = normalized_trace(kernel, start=process.premain_log_len)
        assert len(sliced) <= len(full)

    def test_divergence_detected_and_described(self):
        kernel, process = _kernel_after_stress(3)
        records = normalized_trace(kernel, start=process.premain_log_len)
        mutated = [dict(r) for r in records]
        mutated[2] = dict(mutated[2], call="tampered=-1")
        divergences = diff_normalized(records, mutated)
        assert len(divergences) == 1
        entry = divergences[0]
        assert entry["kind"] == "record"
        text = describe_divergence(entry)
        assert "primary" in text and "shadow" in text

    def test_divergence_context_window(self):
        kernel, process = _kernel_after_stress(3)
        records = normalized_trace(kernel, start=process.premain_log_len)
        mutated = [dict(r) for r in records]
        mutated[4] = dict(mutated[4], call="tampered=-1")
        divergence = diff_normalized(records, mutated)[0]
        context = divergence_context(records, divergence, context=2)
        assert 1 <= len(context) <= 5
        assert any(r.get("seq") == records[4]["seq"] for r in context)
