"""Unit tests for the record/replay subsystem: the nondet seam, the
recorder's bundle layout, the replay cursor's draw verification, the
``RunConfig`` record/replay surfaces, and the CLI round trip."""

import json
import os

import pytest

from repro.api import RunConfig, run
from repro.replay import Recorder, load_bundle, replay_bundle
from repro.replay.replayer import ReplayDivergenceError, _ReplayCursor
from repro.workloads.programs import ProgramBuilder, data_ref
from tests.simutil import spawn_and_run


def _rand_program(path="/bin/rand", nbytes=16):
    builder = ProgramBuilder(path)
    builder.buffer("buf", nbytes)
    builder.start()
    builder.libc("getrandom", data_ref("buf"), nbytes, 0)
    builder.libc("write", 1, data_ref("buf"), nbytes)
    builder.exit(0)
    return builder


# ------------------------------------------------------- the nondet seam


class TestNondetSeam:
    def test_getrandom_draw_is_logged(self, kernel, tmp_path):
        recorder = Recorder(str(tmp_path / "b"), kernel)
        kernel.recorder = recorder
        builder = _rand_program()
        builder.register(kernel)
        process = spawn_and_run(kernel, builder.image.name)
        drawn = bytes(process.output)
        entries = [e for e in recorder._log if e.get("type") == "Nondet"]
        assert len(entries) == 1
        entry = entries[0]
        assert entry["kind"] == "getrandom"
        assert entry["pid"] == process.pid
        assert entry["count"] == 16
        # The logged hex is the exact bytes the application observed.
        assert bytes.fromhex(entry["data"]) == drawn

        meta = recorder.close(exit_status=process.exit_status)
        log = [json.loads(line) for line in
               open(tmp_path / "b" / "log.jsonl", encoding="utf-8")]
        assert log[0]["type"] == "ReplayMeta"
        assert log[-1]["type"] == "RecordEnd"
        assert any(e.get("type") == "Nondet" for e in log)
        assert meta["exit_status"] == 0

    def test_no_recorder_attached_is_free(self, kernel):
        # The seam is a single `is not None` check when nothing records.
        builder = _rand_program("/bin/rand2")
        builder.register(kernel)
        process = spawn_and_run(kernel, builder.image.name)
        assert len(process.output) == 16

    def test_cursor_verifies_matching_draws(self):
        want = {"type": "Nondet", "seq": 5, "kind": "getrandom",
                "pid": 1, "count": 4, "data": "00112233"}
        cursor = _ReplayCursor([want])
        cursor.on_nondet("getrandom",
                         {"pid": 1, "count": 4, "data": "00112233"})
        assert cursor.mismatches == []

    def test_cursor_flags_differing_draw(self):
        want = {"type": "Nondet", "seq": 5, "kind": "getrandom",
                "pid": 1, "count": 4, "data": "00112233"}
        cursor = _ReplayCursor([want])
        cursor.on_nondet("getrandom",
                         {"pid": 1, "count": 4, "data": "deadbeef"})
        assert len(cursor.mismatches) == 1
        assert cursor.mismatches[0]["want"] == want

    def test_cursor_flags_unexpected_extra_draw(self):
        cursor = _ReplayCursor([])
        cursor.on_nondet("getrandom", {"pid": 1, "count": 4, "data": "00"})
        assert len(cursor.mismatches) == 1
        assert cursor.mismatches[0]["want"] is None


# -------------------------------------------------------- bundle layout


class TestBundleLayout:
    @pytest.fixture(scope="class")
    def bundle_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("unit") / "bundle"
        run(RunConfig(mechanism="lazypoline", workload="stress", seed=3,
                      params=(("iterations", 120),), record=str(path)))
        return str(path)

    def test_files_and_meta(self, bundle_dir):
        for name in ("meta.json", "events.jsonl", "log.jsonl"):
            assert os.path.exists(os.path.join(bundle_dir, name))
        bundle = load_bundle(bundle_dir)
        meta = bundle.meta
        assert meta["version"] == 1
        assert meta["final_seq"] > 0
        assert meta["config"]["mechanism"] == "lazypoline"
        assert meta["config"]["workload"] == "stress"
        for cp in meta["checkpoints"]:
            assert os.path.exists(os.path.join(bundle_dir, cp["file"]))
            assert 0 < cp["seq"] <= meta["final_seq"]

    def test_events_stream_is_schema_v2(self, bundle_dir):
        with open(os.path.join(bundle_dir, "events.jsonl"),
                  encoding="utf-8") as fh:
            header = json.loads(fh.readline())
        assert header["type"] == "TraceMeta"
        assert header["seq"] == 0

    def test_checkpoint_markers_present_in_stream(self, bundle_dir):
        bundle = load_bundle(bundle_dir)
        markers = [e for e in bundle.events
                   if e["type"] == "ReplayCheckpoint"]
        assert [m["seq"] for m in markers] == \
            [cp["seq"] for cp in bundle.meta["checkpoints"]]

    def test_replay_to_midpoint_round_trips(self, bundle_dir):
        bundle = load_bundle(bundle_dir)
        result = replay_bundle(bundle_dir, to_seq=bundle.final_seq // 2)
        assert result.ok, f"{result.summary()}; {result.divergence}"

    def test_run_replay_api_surface(self, bundle_dir):
        result = run(RunConfig(mechanism="lazypoline", workload="stress",
                               seed=3, replay_from=bundle_dir))
        assert result.counters["replay"]["compared"] > 0

    def test_run_replay_rejects_config_mismatch(self, bundle_dir):
        with pytest.raises(ValueError, match="mechanism"):
            run(RunConfig(mechanism="native", workload="stress", seed=3,
                          replay_from=bundle_dir))


# ------------------------------------------------- config validation


class TestRunConfigSurface:
    def test_record_and_replay_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="mutually"):
            RunConfig(mechanism="native", workload="stress", seed=1,
                      record=str(tmp_path / "a"),
                      replay_from=str(tmp_path / "b"))

    def test_record_rejects_server_workloads(self, tmp_path):
        with pytest.raises(ValueError, match="batch"):
            RunConfig(mechanism="native", workload="lighttpd", seed=1,
                      record=str(tmp_path / "a"))

    def test_checkpoint_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            RunConfig(mechanism="native", workload="stress", seed=1,
                      record=str(tmp_path / "a"), checkpoint_interval=0)

    def test_replay_missing_bundle_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            replay_bundle(str(tmp_path / "nope"))


# ------------------------------------------------------------- the CLI


class TestCli:
    def test_record_then_replay_round_trip(self, tmp_path, capsys):
        from repro.tools.replay import main

        bundle = str(tmp_path / "cli-bundle")
        assert main(["--record", "--bundle", bundle, "--seed", "7",
                     "--iterations", "100"]) == 0
        final_seq = load_bundle(bundle).final_seq
        assert main(["--bundle", bundle,
                     "--to-seq", str(final_seq // 2)]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out

    def test_replay_missing_bundle_exits_2(self, tmp_path, capsys):
        from repro.tools.replay import main

        assert main(["--bundle", str(tmp_path / "missing")]) == 2
