"""Cycle-model unit tests."""

import pytest

from repro.cpu.cycles import CLOCK_HZ, CycleModel, DEFAULT_COSTS, Event


def test_charge_accumulates():
    model = CycleModel()
    added = model.charge(Event.KERNEL_SYSCALL)
    assert added == DEFAULT_COSTS[Event.KERNEL_SYSCALL]
    model.charge(Event.INSTRUCTION, times=5)
    assert model.cycles == added + 5
    assert model.counts[Event.INSTRUCTION] == 5


def test_charge_cycles_raw():
    model = CycleModel()
    model.charge_cycles(123)
    assert model.cycles == 123


def test_cost_overrides():
    model = CycleModel(costs={Event.KERNEL_SYSCALL: 1000})
    assert model.charge(Event.KERNEL_SYSCALL) == 1000
    # Other costs keep their defaults.
    assert model.costs[Event.SIGNAL_DELIVERY] == \
        DEFAULT_COSTS[Event.SIGNAL_DELIVERY]


def test_seconds_at_modelled_clock():
    model = CycleModel()
    model.charge_cycles(CLOCK_HZ)
    assert model.seconds == pytest.approx(1.0)


def test_snapshot_is_a_copy():
    model = CycleModel()
    model.charge(Event.MPROTECT)
    snap = model.snapshot()
    model.charge(Event.MPROTECT)
    assert snap[Event.MPROTECT] == 1
    assert model.counts[Event.MPROTECT] == 2


def test_reset():
    model = CycleModel()
    model.charge(Event.DLOPEN)
    model.reset()
    assert model.cycles == 0
    assert all(count == 0 for count in model.counts.values())


def test_every_event_has_a_cost():
    assert set(DEFAULT_COSTS) == set(Event)


def test_calibration_relationships():
    """Structural relations the paper's analysis rests on (§6.2.1)."""
    costs = DEFAULT_COSTS
    # Signal delivery dwarfs everything on the fast paths.
    assert costs[Event.SIGNAL_DELIVERY] > 20 * costs[Event.KERNEL_SYSCALL] / 3
    # The hash-set probe costs more than the bitmap probe (P4b trade).
    assert costs[Event.HASHSET_CHECK] > costs[Event.BITMAP_CHECK]
    # K23's handler is leaner than lazypoline's (rcx/r11 reuse).
    assert costs[Event.K23_HANDLER] < costs[Event.LAZYPOLINE_HANDLER]
    # ptrace stops are the most expensive per-syscall mechanism.
    assert 2 * costs[Event.PTRACE_STOP] > \
        costs[Event.SIGNAL_DELIVERY] + costs[Event.SIGRETURN]
