"""Interpreter semantics tests against a bare execution environment."""

import struct

import pytest

from repro.arch.assembler import Asm
from repro.arch.registers import Reg
from repro.cpu.core import step
from repro.cpu.cycles import CycleModel, Event
from repro.cpu.icache import ICache
from repro.cpu.state import CpuContext
from repro.errors import Breakpoint, Halt, InvalidOpcode, SegmentationFault
from repro.memory import AddressSpace, PAGE_SIZE, Prot

CODE_BASE = 0x40_0000
DATA_BASE = 0x60_0000
STACK_TOP = 0x80_0000


class BareEnv:
    """Execution environment with no kernel: code, data, and a stack."""

    def __init__(self, code: bytes):
        self.context = CpuContext()
        self.icache = ICache()
        self.space = AddressSpace()
        self.cycles = CycleModel()
        self.space.mmap(CODE_BASE, max(len(code), 1), Prot.READ | Prot.EXEC,
                        name="code", fixed=True)
        self.space.write_kernel(CODE_BASE, code)
        self.space.mmap(DATA_BASE, PAGE_SIZE, Prot.READ | Prot.WRITE,
                        name="data", fixed=True)
        self.space.mmap(STACK_TOP - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                        Prot.READ | Prot.WRITE, name="stack", fixed=True)
        self.context.rip = CODE_BASE
        self.context.set(Reg.RSP, STACK_TOP - 16)
        self.syscalls = []
        self.hostcalls = []

    def mem_fetch(self, addr, n):
        return self.space.fetch(addr, n)

    def mem_read(self, addr, n):
        return self.space.read(addr, n, pkru=self.context.pkru)

    def mem_write(self, addr, data):
        self.space.write(addr, data, pkru=self.context.pkru)

    def on_syscall(self):
        self.syscalls.append(self.context.syscall_number)

    def on_hostcall(self, index):
        self.hostcalls.append(index)

    def charge(self, event):
        self.cycles.charge(event)

    def run(self, n):
        for _ in range(n):
            step(self)


def build(writer) -> BareEnv:
    asm = Asm()
    writer(asm)
    return BareEnv(asm.assemble())


def test_mov_and_arith():
    env = build(lambda a: (a.mov_ri(Reg.RAX, 7), a.mov_ri(Reg.RBX, 5),
                           a.add_rr(Reg.RAX, Reg.RBX), a.sub_ri(Reg.RAX, 2)))
    env.run(4)
    assert env.context.get(Reg.RAX) == 10


def test_flags_and_conditional_branch():
    def writer(a):
        a.mov_ri(Reg.RCX, 3)
        a.label("top")
        a.dec(Reg.RCX)
        a.jne("top")
        a.mov_ri(Reg.RAX, 99)

    env = build(writer)
    env.run(1 + 3 * 2 + 1)
    assert env.context.get(Reg.RAX) == 99
    assert env.context.get(Reg.RCX) == 0


def test_push_pop_roundtrip():
    env = build(lambda a: (a.mov_ri(Reg.RAX, 0x1234), a.push(Reg.RAX),
                           a.pop(Reg.RBX)))
    rsp0 = None
    env.run(1)
    rsp0 = env.context.get(Reg.RSP)
    env.run(2)
    assert env.context.get(Reg.RBX) == 0x1234
    assert env.context.get(Reg.RSP) == rsp0


def test_call_pushes_return_address():
    def writer(a):
        a.call("fn")          # 5 bytes
        a.mov_ri(Reg.RBX, 1)  # return target
        a.label("fn")
        a.pop(Reg.RAX)        # grab the return address

    env = build(writer)
    env.run(2)
    assert env.context.get(Reg.RAX) == CODE_BASE + 5


def test_call_reg_and_ret():
    def writer(a):
        a.mov_ri(Reg.RAX, CODE_BASE + 100)
        a.call_reg(Reg.RAX)
        a.hlt()

    asm = Asm()
    writer(asm)
    code = bytearray(asm.assemble())
    code += b"\x90" * (100 - len(code))
    code += b"\xc3"  # ret at +100
    env = BareEnv(bytes(code))
    env.run(3)  # mov, call, ret
    # ret returns to the instruction after call_reg (5-byte mov + 2-byte call).
    assert env.context.rip == CODE_BASE + 7


def test_load_store_roundtrip():
    def writer(a):
        a.mov_ri(Reg.RDI, DATA_BASE)
        a.mov_ri(Reg.RAX, 0xDEADBEEF)
        a.store(Reg.RDI, Reg.RAX)
        a.load(Reg.RBX, Reg.RDI)

    env = build(writer)
    env.run(4)
    assert env.context.get(Reg.RBX) == 0xDEADBEEF
    assert env.space.read(DATA_BASE, 8) == struct.pack("<Q", 0xDEADBEEF)


def test_byte_store_load():
    def writer(a):
        a.mov_ri(Reg.RBX, DATA_BASE)
        a.mov_ri(Reg.RAX, 0x1FF)  # low byte 0xFF
        a.store8(Reg.RBX, Reg.RAX)
        a.load8(Reg.RCX, Reg.RBX)

    env = build(writer)
    env.run(4)
    assert env.context.get(Reg.RCX) == 0xFF


def test_lea_rip():
    def writer(a):
        a.lea_rip_label(Reg.RSI, "blob")
        a.hlt()
        a.label("blob")

    env = build(writer)
    env.run(1)
    assert env.context.get(Reg.RSI) == CODE_BASE + 8  # lea(7) + hlt(1)


def test_syscall_dispatches_to_env():
    env = build(lambda a: (a.mov_ri(Reg.RAX, 60), a.syscall_()))
    env.run(2)
    assert env.syscalls == [60]
    # RIP advanced past the 2-byte syscall before dispatch.
    assert env.context.rip == CODE_BASE + 5 + 2


def test_hostcall_dispatches_to_env():
    env = build(lambda a: a.hostcall(7))
    env.run(1)
    assert env.hostcalls == [7]


def test_rip_advances_before_execution():
    """A trampoline entered by callq *%rax must find site+2 on the stack."""
    def writer(a):
        a.mov_ri(Reg.RAX, CODE_BASE + 40)
        a.mark("site")
        a.call_reg(Reg.RAX)

    asm = Asm()
    writer(asm)
    site = asm.marks["site"]
    code = bytearray(asm.assemble())
    code += b"\x90" * (40 - len(code))
    code += b"\x58"  # pop rax at +40
    env = BareEnv(bytes(code))
    env.run(3)
    assert env.context.get(Reg.RAX) == CODE_BASE + site + 2


def test_faults_propagate():
    with pytest.raises(Breakpoint):
        build(lambda a: a.int3()).run(1)
    with pytest.raises(InvalidOpcode):
        build(lambda a: a.ud2()).run(1)
    with pytest.raises(Halt):
        build(lambda a: a.hlt()).run(1)


def test_exec_of_unmapped_memory_faults():
    env = build(lambda a: (a.mov_ri(Reg.RAX, 0x1234_0000),
                           a.jmp_reg(Reg.RAX)))
    env.run(2)
    with pytest.raises(SegmentationFault):
        env.run(1)


def test_instruction_event_charged():
    env = build(lambda a: (a.mov_ri(Reg.RAX, 1), a.mov_ri(Reg.RBX, 2),
                           a.ret()))
    env.run(3)
    assert env.cycles.counts[Event.INSTRUCTION] == 3


def test_nop_run_consumed_in_one_step():
    # A nop run models the trampoline sled: consumed in one step, charged
    # once (traversal cost lives in the TRAMPOLINE_SLED event).
    env = build(lambda a: (a.nop(200), a.mov_ri(Reg.RAX, 7)))
    env.run(1)
    assert env.context.rip == CODE_BASE + 200
    assert env.cycles.counts[Event.INSTRUCTION] == 1
    env.run(1)
    assert env.context.get(Reg.RAX) == 7


def test_serializing_instruction_flushes_icache():
    env = build(lambda a: (a.nop(), a.cpuid(), a.nop()))
    env.run(1)
    assert len(env.icache) > 0
    env.run(1)  # cpuid
    assert len(env.icache) == 0


def test_signed_compare_jl():
    def writer(a):
        a.mov_ri(Reg.RAX, 3)
        a.cmp_ri(Reg.RAX, 5)
        a.jl("less")
        a.mov_ri(Reg.RBX, 0)
        a.hlt()
        a.label("less")
        a.mov_ri(Reg.RBX, 1)

    env = build(writer)
    env.run(4)
    assert env.context.get(Reg.RBX) == 1
