"""I-cache coherence model tests — the substrate for pitfall P5."""

from repro.arch.isa import Mnemonic
from repro.cpu.icache import ICache


def make_memory(initial: bytes):
    buf = bytearray(initial)

    def read(addr, n):
        return bytes(buf[addr:addr + n])

    return buf, read


def test_fetch_decodes_and_caches():
    buf, read = make_memory(b"\x0f\x05" + b"\x90" * 14)
    cache = ICache()
    insn = cache.fetch(0, read)
    assert insn.mnemonic is Mnemonic.SYSCALL
    assert cache.misses == 1
    cache.fetch(0, read)
    assert cache.hits == 1


def test_stale_decode_after_remote_write():
    """Another core patches the bytes; without a flush this core keeps
    executing the *old* instruction — the P5 hazard."""
    buf, read = make_memory(b"\x0f\x05" + b"\x90" * 14)
    cache = ICache()
    assert cache.fetch(0, read).mnemonic is Mnemonic.SYSCALL
    buf[0:2] = b"\xff\xd0"  # remote rewrite to callq *%rax
    assert cache.fetch(0, read).mnemonic is Mnemonic.SYSCALL  # stale!


def test_invalidate_range_picks_up_new_bytes():
    buf, read = make_memory(b"\x0f\x05" + b"\x90" * 14)
    cache = ICache()
    cache.fetch(0, read)
    buf[0:2] = b"\xff\xd0"
    cache.invalidate_range(0, 2)
    assert cache.fetch(0, read).mnemonic is Mnemonic.CALL_REG


def test_invalidate_covers_overlapping_lines():
    # An instruction cached at address 3 overlaps a write at address 5.
    buf, read = make_memory(b"\x90" * 3 + b"\x48\xb8" + b"\x11" * 8 + b"\x90" * 5)
    cache = ICache()
    cache.fetch(3, read)
    buf[5] = 0x22
    cache.invalidate_range(5, 1)
    assert cache.fetch(3, read).raw[2] == 0x22


def test_flush_all():
    buf, read = make_memory(b"\x90" * 16)
    cache = ICache()
    cache.fetch(0, read)
    cache.fetch(1, read)
    assert len(cache) == 2
    cache.flush_all()
    assert len(cache) == 0


def test_distinct_addresses_cached_separately():
    buf, read = make_memory(b"\x90\xc3" + b"\x90" * 14)
    cache = ICache()
    assert cache.fetch(0, read).mnemonic is Mnemonic.NOP
    assert cache.fetch(1, read).mnemonic is Mnemonic.RET
    assert cache.misses == 2
