"""Basic-block translation cache: record/replay semantics and coherence."""

import pytest

from repro.arch.assembler import Asm
from repro.arch.registers import Reg
from repro.cpu.blocks import BLOCK_MAX, run_unit
from repro.cpu.core import step
from repro.cpu.cycles import CycleModel, Event
from repro.cpu.icache import ICache
from repro.cpu.state import CpuContext
from repro.errors import SegmentationFault
from repro.memory import AddressSpace, PAGE_SIZE, Prot

CODE_BASE = 0x40_0000
DATA_BASE = 0x60_0000
STACK_TOP = 0x80_0000


class UnitEnv:
    """Bare execution environment speaking the block-executor protocol
    (``charge`` with a count, ``unit_retired``)."""

    def __init__(self, code: bytes):
        self.context = CpuContext()
        self.icache = ICache()
        self.space = AddressSpace()
        self.cycles = CycleModel()
        self.unit_retired = 0
        self.space.mmap(CODE_BASE, max(len(code), 1), Prot.READ | Prot.EXEC,
                        name="code", fixed=True)
        self.space.write_kernel(CODE_BASE, code)
        self.space.mmap(DATA_BASE, PAGE_SIZE, Prot.READ | Prot.WRITE,
                        name="data", fixed=True)
        self.space.mmap(STACK_TOP - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                        Prot.READ | Prot.WRITE, name="stack", fixed=True)
        self.context.rip = CODE_BASE
        self.context.set(Reg.RSP, STACK_TOP - 16)
        self.syscalls = []
        self.hostcalls = []

    def mem_fetch(self, addr, n):
        return self.space.fetch(addr, n)

    def mem_read(self, addr, n):
        return self.space.read(addr, n, pkru=self.context.pkru)

    def mem_write(self, addr, data):
        self.space.write(addr, data, pkru=self.context.pkru)

    def on_syscall(self):
        self.syscalls.append(self.context.syscall_number)

    def on_hostcall(self, index):
        self.hostcalls.append(index)

    def charge(self, event, times=1):
        self.cycles.charge(event, times)

    def run_units(self, budget=100):
        """One scheduler-turn equivalent: units until *budget* retires."""
        done = 0
        while done < budget:
            done += run_unit(self, budget - done)
        return done


def build(writer) -> UnitEnv:
    asm = Asm()
    writer(asm)
    return UnitEnv(asm.assemble())


def writable_code(writer) -> UnitEnv:
    asm = Asm()
    writer(asm)
    env = build(writer)
    env.space.mprotect(CODE_BASE, PAGE_SIZE, Prot.READ | Prot.WRITE | Prot.EXEC)
    return env


# ---------------------------------------------------------------- recording


def test_first_visit_records_then_replays():
    def writer(a):
        a.label("top")
        a.mov_ri(Reg.RAX, 7)
        a.add_ri(Reg.RAX, 1)
        a.jmp("top")

    env = build(writer)
    n = run_unit(env, 100)
    assert n == 3
    assert env.icache.block_installs == 1
    assert env.icache.block_hits == 0
    n = run_unit(env, 100)
    assert n == 3
    assert env.icache.block_hits == 1
    assert env.context.get(Reg.RAX) == 8
    # Replay touched no new lines: hits/misses frozen after the recording.
    assert env.icache.misses == 3


def test_block_ends_at_terminator_and_charges_match():
    env = build(lambda a: (a.mov_ri(Reg.RAX, 60), a.mov_ri(Reg.RDI, 0),
                           a.syscall_(), a.mov_ri(Reg.RBX, 1)))
    n = run_unit(env, 100)
    assert n == 3                      # block ends at the syscall
    assert env.syscalls == [60]
    assert env.cycles.counts[Event.INSTRUCTION] == 3
    env.context.rip = CODE_BASE
    run_unit(env, 100)
    assert env.cycles.counts[Event.INSTRUCTION] == 6
    assert env.syscalls == [60, 60]


def test_budget_caps_replay_and_uncharges_tail():
    def writer(a):
        for i in range(10):
            a.mov_ri(Reg.RAX, i)
        a.ret()

    env = build(writer)
    env.context.set(Reg.RSP, STACK_TOP - 16)
    env.space.write(STACK_TOP - 16, (CODE_BASE).to_bytes(8, "little"))
    run_unit(env, 100)                  # record the 11-step block
    env.context.rip = CODE_BASE
    n = run_unit(env, 4)                # replay under a tight budget
    assert n == 4
    assert env.context.get(Reg.RAX) == 3
    assert env.context.rip == CODE_BASE + 4 * 5
    assert env.cycles.counts[Event.INSTRUCTION] == 11 + 4


def test_block_max_bounds_recording():
    def writer(a):
        for i in range(BLOCK_MAX + 20):
            a.mov_ri(Reg.RAX, i)
        a.ret()

    env = build(writer)
    n = run_unit(env, 1000)
    assert n == BLOCK_MAX
    block = env.icache.block_at(CODE_BASE)
    assert len(block.steps) == BLOCK_MAX


def test_single_byte_nop_is_never_cached():
    env = build(lambda a: (a.nop(50), a.mov_ri(Reg.RAX, 9), a.ret()))
    n = run_unit(env, 100)
    assert n == 1                       # the whole sled, one instruction
    assert env.context.rip == CODE_BASE + 50
    assert env.icache.block_installs == 0
    assert env.cycles.counts[Event.INSTRUCTION] == 1


def test_block_stops_before_nop_sled():
    env = build(lambda a: (a.mov_ri(Reg.RAX, 1), a.mov_ri(Reg.RBX, 2),
                           a.nop(10), a.ret()))
    n = run_unit(env, 100)
    assert n == 2                       # block ends before the sled
    block = env.icache.block_at(CODE_BASE)
    assert len(block.steps) == 2


# ------------------------------------------------------------- invalidation


def test_own_store_into_block_stops_replay_and_picks_up_new_bytes():
    # Self-modifying straight line: overwrite the upcoming mov_ri imm byte.
    def writer(a):
        a.mov_ri(Reg.RDI, 0)            # patched below to point into code
        a.mov_ri(Reg.RAX, 0x11)
        a.store8(Reg.RDI, Reg.RAX)      # same-core store into the block
        a.mov_ri(Reg.RBX, 0x00)         # target: imm byte patched to 0x11
        a.ret()

    env = writable_code(writer)
    # Point RDI at the imm32 LSB of the 4th instruction (mov_ri = opcode +
    # imm32 at +1; the preceding insns are 5+5+2 bytes).
    target = CODE_BASE + 12 + 1
    env.space.write_kernel(CODE_BASE + 1, target.to_bytes(4, "little"))
    env.icache.flush_all()

    single = writable_code(writer)
    single.space.write_kernel(CODE_BASE + 1, target.to_bytes(4, "little"))
    single.icache.flush_all()

    done = env.run_units(5)
    for _ in range(5):
        step(single)
    assert done == 5
    assert env.context.get(Reg.RBX) == single.context.get(Reg.RBX) == 0x11
    assert env.cycles.counts[Event.INSTRUCTION] == \
        single.cycles.counts[Event.INSTRUCTION]


def test_remote_store_leaves_block_stale():
    """P5: a writer that skips invalidation leaves this core replaying the
    old decode — identical to the single-step interpreter's stale line."""
    def writer(a):
        a.label("top")
        a.mov_ri(Reg.RAX, 1)
        a.jmp("top")

    block_env = build(writer)
    step_env = build(writer)
    for env in (block_env,):
        run_unit(env, 100)              # record (and execute once)
    for _ in range(2):
        step(step_env)                  # populate decoded lines

    # Remote core patches the imm32 without any icache shootdown.
    patch = (2).to_bytes(4, "little")
    block_env.space.write_kernel(CODE_BASE + 1, patch)
    step_env.space.write_kernel(CODE_BASE + 1, patch)

    run_unit(block_env, 100)
    step(step_env), step(step_env)
    assert block_env.context.get(Reg.RAX) == 1      # stale, not 2
    assert step_env.context.get(Reg.RAX) == 1       # identical staleness

    # A serializing instruction discards blocks with the lines.
    block_env.icache.flush_all()
    step_env.icache.flush_all()
    run_unit(block_env, 100)
    step(step_env), step(step_env)
    assert block_env.context.get(Reg.RAX) == 2
    assert step_env.context.get(Reg.RAX) == 2


def test_invalidate_range_drops_overlapping_block():
    env = build(lambda a: (a.mov_ri(Reg.RAX, 5), a.ret()))
    run_unit(env, 100)
    assert env.icache.block_at(CODE_BASE) is not None
    hits_before = env.icache.block_hits
    env.icache.invalidate_range(CODE_BASE + 2, 1)
    assert env.icache.block_at(CODE_BASE) is None
    assert env.icache.block_hits == hits_before      # misses are not hits


def test_replay_fault_uncharges_unexecuted_tail():
    asm = Asm()
    asm.mov_ri(Reg.RAX, 1)
    asm.mov_ri(Reg.RBX, 2)
    asm.load(Reg.RCX, Reg.RDX)          # faults when RDX is unmapped
    asm.mark("after_load")
    asm.mov_ri(Reg.RSI, 3)
    asm.ret()
    env = UnitEnv(asm.assemble())
    env.context.set(Reg.RDX, DATA_BASE)
    run_unit(env, 100)                  # records the full 5-step block
    charged = env.cycles.counts[Event.INSTRUCTION]
    assert charged == 5

    env.context.rip = CODE_BASE
    env.context.set(Reg.RDX, 0x1234_0000)   # unmapped
    with pytest.raises(SegmentationFault):
        run_unit(env, 100)
    # Single-step would charge mov, mov, and the faulting load: 3 more.
    assert env.cycles.counts[Event.INSTRUCTION] == charged + 3
    assert env.unit_retired == 3
    # RIP parity with single-step at fault time: advanced past the load.
    assert env.context.rip == CODE_BASE + asm.marks["after_load"]


def test_doomed_recording_is_not_installed():
    # cpuid mid-trace flushes the icache, dooming the in-progress block.
    env = build(lambda a: (a.mov_ri(Reg.RAX, 1), a.cpuid(), a.ret()))
    n = run_unit(env, 100)
    assert n == 2                       # cpuid is a terminator
    assert env.icache.block_installs == 0
    assert len(env.icache) == 0
