"""Tiered execution engine: chaining, superblocks, and the trace JIT.

Unit tests for :mod:`repro.cpu.engine` / :mod:`repro.cpu.tracejit` at
the mechanism level — the lockstep fuzzer
(tests/properties/test_prop_lockstep.py) covers whole-program
conformance; this file pins down the individual moving parts: edge
installation and re-validation, superblock formation boundaries, batch
charge/un-charge accounting, guard-failure fallback, invalidation
dooming, and the trace-compilation gate.
"""

import pytest

from repro.arch.assembler import Asm
from repro.arch.registers import Reg
from repro.cpu.blocks import run_unit
from repro.cpu.cycles import CycleModel, Event
from repro.cpu.engine import EngineConfig, Superblock, form_superblock
from repro.cpu.icache import (ICache, TERM_COND, TERM_DIRECT, TERM_END,
                              TERM_INDIRECT)
from repro.cpu.state import CpuContext
from repro.memory import AddressSpace, PAGE_SIZE, Prot

CODE_BASE = 0x40_0000
DATA_BASE = 0x60_0000
STACK_TOP = 0x80_0000

#: Low thresholds so short test programs cross every tier.
HOT = dict(superblock_threshold=2, jit_threshold=2)


class EngineEnv:
    """Execution environment with a tier-enabled icache and the trace-JIT
    ``mem_space`` contract."""

    def __init__(self, code: bytes, engine=None,
                 code_prot=Prot.READ | Prot.EXEC):
        self.context = CpuContext()
        self.icache = ICache(engine=engine)
        self.space = AddressSpace()
        self.mem_space = self.space
        self.cycles = CycleModel()
        self.unit_retired = 0
        self.space.mmap(CODE_BASE, max(len(code), 1), code_prot,
                        name="code", fixed=True)
        self.space.write_kernel(CODE_BASE, code)
        self.space.mmap(DATA_BASE, PAGE_SIZE, Prot.READ | Prot.WRITE,
                        name="data", fixed=True)
        self.space.mmap(STACK_TOP - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                        Prot.READ | Prot.WRITE, name="stack", fixed=True)
        self.context.rip = CODE_BASE
        self.context.set(Reg.RSP, STACK_TOP - 16)
        self.context.set(Reg.RDI, DATA_BASE)
        self.syscalls = []

    def mem_fetch(self, addr, n):
        return self.space.fetch(addr, n)

    def mem_read(self, addr, n):
        return self.space.read(addr, n, pkru=self.context.pkru)

    def mem_write(self, addr, data):
        self.space.write(addr, data, pkru=self.context.pkru)

    def on_syscall(self):
        self.syscalls.append(self.context.syscall_number)

    def on_hostcall(self, index):
        pass

    def charge(self, event, times=1):
        self.cycles.charge(event, times)

    def run(self, units, budget=100):
        total = 0
        for _ in range(units):
            total += run_unit(self, budget)
        return total


def build(writer, engine=None, **kwargs) -> EngineEnv:
    asm = Asm()
    writer(asm)
    return EngineEnv(asm.assemble(), engine=engine, **kwargs)


def counted_loop(trips=300):
    """A hot self-looping block: body, then a conditional back-edge."""
    def writer(a):
        a.mov_ri(Reg.RCX, trips)
        a.mark("loop")
        a.label("loop")
        a.inc(Reg.RAX)
        a.add_rr(Reg.RBX, Reg.RAX)
        a.dec(Reg.RCX)
        a.jne("loop")
        a.hlt()
    return writer


def loop_entry(trips=300) -> int:
    """Code address of ``counted_loop``'s back-edge target."""
    asm = Asm()
    counted_loop(trips)(asm)
    asm.assemble()
    return CODE_BASE + asm.marks["loop"]


# ----------------------------------------------------------- configuration


def test_config_tier_hierarchy():
    assert EngineConfig(chain=False).superblock is False
    assert EngineConfig(chain=False).trace_jit is False
    assert EngineConfig(superblock=False).trace_jit is False
    full = EngineConfig()
    assert full.chain and full.superblock and full.trace_jit


def test_config_from_env(monkeypatch):
    # Pin every hatch so the test holds when the suite itself runs under
    # one (the CI engine-matrix job does exactly that).
    monkeypatch.delenv("REPRO_NO_CHAIN", raising=False)
    monkeypatch.delenv("REPRO_NO_TRACE_JIT", raising=False)
    monkeypatch.setenv("REPRO_NO_SUPERBLOCK", "1")
    config = EngineConfig.from_env()
    assert config.chain is True
    assert config.superblock is False
    assert config.trace_jit is False
    assert config.flags() == {"chain": True, "superblock": False,
                              "trace_jit": False}


# ---------------------------------------------------------------- chaining


def test_chain_links_and_follows():
    env = build(counted_loop(), engine=EngineConfig(superblock=False))
    env.run(4)
    ic = env.icache
    assert ic.chain_links >= 1
    assert ic.chain_follows >= 1
    # The loop back-edge block chains to itself via the cond edge.
    loop_block = ic._blocks[loop_entry()]
    assert loop_block.succ is loop_block


def test_chain_disabled_is_one_block_per_unit():
    engine = EngineConfig(chain=False)
    env = build(counted_loop(), engine=engine)
    try:
        while True:
            env.run(1)
    except Exception:
        pass
    assert env.icache.chain_follows == 0
    assert env.icache.superblocks_formed == 0


def test_stale_edge_revalidates_not_misexecutes():
    """A dropped successor is rejected by the succ.valid check and the
    chain falls back to the dictionary lookup."""
    engine = EngineConfig(superblock=False)
    env = build(counted_loop(), engine=engine)
    env.run(4)
    ic = env.icache
    loop_block = ic._blocks[loop_entry()]
    ic._drop_block(loop_block)
    assert not loop_block.valid
    before = env.context.get(Reg.RAX)
    env.run(2)          # must re-record / re-look-up, not follow the corpse
    assert env.context.get(Reg.RAX) > before
    fresh = env.icache._blocks[loop_entry()]
    assert fresh is not loop_block and fresh.valid


# -------------------------------------------------------------- superblocks


def test_superblock_forms_after_threshold():
    engine = EngineConfig(trace_jit=False, **HOT)
    env = build(counted_loop(), engine=engine)
    env.run(8)
    ic = env.icache
    assert ic.superblocks_formed >= 1
    assert ic.superblock_hits >= 1
    sb = next(b.superblock for b in ic._blocks.values()
              if b.superblock is not None)
    assert sb.valid
    assert sb.n_steps == sum(len(b.steps) for b in sb.blocks)
    for member in sb.blocks:
        assert sb in member.sbs


def test_superblock_formation_stops_at_term_end():
    """Blocks ending in syscalls terminate formation: the scheduler must
    get control back."""
    def writer(a):
        a.mov_ri(Reg.RCX, 30)
        a.label("loop")
        a.mov_ri(Reg.RAX, 39)
        a.syscall_()
        a.dec(Reg.RCX)
        a.jne("loop")
        a.hlt()
    engine = EngineConfig(trace_jit=False, **HOT)
    env = build(writer, engine=engine)
    env.run(30)
    for block in env.icache._blocks.values():
        sb = block.superblock
        if sb is None:
            continue
        # No *interior* constituent may end the unit.
        for member in sb.blocks[:-1]:
            assert member.term != TERM_END


def test_superblock_batch_charge_matches_per_block():
    """Total INSTRUCTION count is identical whether the loop retires via
    superblocks or plain blocks (the zero-residual decomposition)."""
    def run_with(engine):
        env = build(counted_loop(25), engine=engine)
        try:
            while True:
                env.run(1)
        except Exception:
            pass
        return env.cycles.counts[Event.INSTRUCTION], env.cycles.cycles

    plain = run_with(None)
    chained = run_with(EngineConfig(superblock=False))
    sb = run_with(EngineConfig(trace_jit=False, **HOT))
    jit = run_with(EngineConfig(**HOT))
    assert plain == chained == sb == jit


def test_guard_failure_falls_back():
    """A conditional *interior* to a superblock that goes the un-recorded
    way exits early with the tail un-charged.  The syscall block after
    the conditional ends the superblock (TERM_END), so the ``je`` cannot
    be the natural tail exit — its wrong-way branch must be a guard
    failure."""
    def writer(a):
        a.mov_ri(Reg.RCX, 40)
        a.label("loop")
        a.cmp_ri(Reg.RCX, 20)
        a.je("late")            # not-taken while hot, taken at RCX=20
        a.mov_ri(Reg.RAX, 39)
        a.syscall_()
        a.label("back")
        a.dec(Reg.RCX)
        a.jne("loop")
        a.hlt()
        a.label("late")
        a.inc(Reg.RBX)
        a.jmp("back")
    engine = EngineConfig(trace_jit=False, **HOT)
    env = build(writer, engine=engine)
    ref = build(writer, engine=None)
    for e in (env, ref):
        try:
            while True:
                e.run(1)
        except Exception:
            pass
    assert env.icache.guard_fails >= 1
    assert env.context.get(Reg.RBX) == ref.context.get(Reg.RBX) == 1
    assert len(env.syscalls) == len(ref.syscalls) == 39
    assert env.cycles.cycles == ref.cycles.cycles


def test_invalidation_dooms_superblock_and_reheats():
    engine = EngineConfig(trace_jit=False, **HOT)
    env = build(counted_loop(), engine=engine)
    env.run(8)
    ic = env.icache
    head = next(b for b in ic._blocks.values() if b.superblock is not None)
    sb = head.superblock
    member = sb.blocks[-1]
    ic.invalidate_range(member.entry, 1)
    assert not sb.valid
    assert head.superblock is None
    assert head.heat == 0
    assert ic.invalidation_unlinks >= 1


def test_flush_all_dooms_superblocks():
    engine = EngineConfig(trace_jit=False, **HOT)
    env = build(counted_loop(), engine=engine)
    env.run(8)
    ic = env.icache
    sb = next(b.superblock for b in ic._blocks.values()
              if b.superblock is not None)
    ic.flush_all()
    assert not sb.valid


# ---------------------------------------------------------------- trace JIT


def test_trace_compiles_and_matches_interpreter():
    def writer(a):
        a.mov_ri(Reg.RCX, 30)
        a.label("loop")
        a.inc(Reg.RAX)
        a.store(Reg.RDI, Reg.RAX)
        a.load(Reg.RBX, Reg.RDI)
        a.push(Reg.RBX)
        a.pop(Reg.RDX)
        a.dec(Reg.RCX)
        a.jne("loop")
        a.hlt()
    jit_env = build(writer, engine=EngineConfig(**HOT))
    ref_env = build(writer, engine=None)
    for env in (jit_env, ref_env):
        try:
            while True:
                env.run(1)
        except Exception:
            pass
    assert jit_env.icache.traces_compiled >= 1
    assert jit_env.icache.trace_hits >= 1
    assert tuple(jit_env.context._regs) == tuple(ref_env.context._regs)
    assert jit_env.cycles.cycles == ref_env.cycles.cycles
    assert jit_env.space.read_kernel(DATA_BASE, 8) == \
        ref_env.space.read_kernel(DATA_BASE, 8)


def test_trace_requires_mem_space_contract():
    """Environments without a ``mem_space`` attribute never get traces
    compiled — the superblock stays interpreted (trace is False)."""
    env = build(counted_loop(60), engine=EngineConfig(**HOT))
    del env.mem_space
    try:
        while True:
            env.run(1)
    except Exception:
        pass
    assert env.icache.traces_compiled == 0
    assert env.icache.superblock_hits >= 1


def test_trace_doomed_by_invalidation_mid_run():
    """A store into a compiled trace's span dooms it; the next dispatch
    re-forms from scratch instead of replaying stale code."""
    engine = EngineConfig(**HOT)
    env = build(counted_loop(500), engine=engine,
                code_prot=Prot.READ | Prot.WRITE | Prot.EXEC)
    env.run(10)
    ic = env.icache
    assert ic.traces_compiled >= 1
    head = next(b for b in ic._blocks.values() if b.superblock is not None)
    sb = head.superblock
    assert sb.trace not in (None, False)
    ic.invalidate_range(sb.blocks[0].entry, 1)
    assert not sb.valid
    before = env.context.get(Reg.RAX)
    env.run(4)
    assert env.context.get(Reg.RAX) > before


# ------------------------------------------------------- formation details


def test_form_superblock_respects_max():
    engine = EngineConfig(superblock_max=4, **HOT)
    env = build(counted_loop(), engine=engine)
    env.run(8)
    for block in env.icache._blocks.values():
        if block.superblock is not None:
            assert block.superblock.n_steps <= 4


def test_superblock_loop_closure_stops_at_seen_entry():
    """Following the self-loop's cond edge must stop when the entry
    revisits — a superblock never contains the same block twice."""
    engine = EngineConfig(trace_jit=False, **HOT)
    env = build(counted_loop(), engine=engine)
    env.run(8)
    formed = 0
    for block in env.icache._blocks.values():
        sb = block.superblock
        if sb is not None:
            formed += 1
            entries = [b.entry for b in sb.blocks]
            assert len(entries) == len(set(entries))
    assert formed >= 1
