"""Lockstep differential fuzz: block/engine-mode vs single-step execution.

Seeded random programs (assembled with :class:`repro.arch.assembler.Asm`)
run twice — once through the basic-block translation cache
(:func:`repro.cpu.blocks.run_unit`), once through the reference single-step
interpreter (:func:`repro.cpu.core.step`) — with the full architectural
state (rip, all 16 registers, flags, cycle counter, syscall/hostcall log,
data memory) compared after every unit boundary.  Cross-core
self-modifying-code scenarios (P5) patch the program mid-block from a
"remote writer" and assert both interpreters exhibit the *identical*
stale/torn behaviour.

The same differential harness drives the tiered execution engine
(:mod:`repro.cpu.engine`): every random program also runs under block
chaining, interpreted superblocks, and the trace JIT (thresholds lowered
so each tier actually engages within a short program), and dedicated
self-modifying-code tortures store into pages participating in linked
chains and compiled traces, asserting the invalidation protocol
(chain unlink + superblock doom) *and* bit-identical architectural state
across all four engine configurations.
"""

import random

import pytest

from repro.arch.assembler import Asm
from repro.arch.registers import Reg
from repro.cpu.blocks import run_unit
from repro.cpu.core import step
from repro.cpu.cycles import CycleModel, Event
from repro.cpu.engine import EngineConfig
from repro.cpu.icache import ICache
from repro.cpu.state import CpuContext
from repro.errors import Breakpoint, Halt, ReproError
from repro.memory import AddressSpace, PAGE_SIZE, Prot

CODE_BASE = 0x40_0000
DATA_BASE = 0x60_0000
STACK_TOP = 0x80_0000

#: Registers the fuzzer scrambles (stack/data pointers stay sane).
SCRATCH = [Reg.RAX, Reg.RBX, Reg.RCX, Reg.RDX, Reg.RSI, Reg.R8, Reg.R9,
           Reg.R10]

#: The four engine configurations the acceptance gate names.  Thresholds
#: are lowered so superblocks form and traces compile within the short
#: fuzz programs; ``None`` is the plain PR 2 one-block-per-unit path.
ENGINES = {
    "block": None,
    "chain": EngineConfig(superblock=False),
    "superblock": EngineConfig(trace_jit=False,
                               superblock_threshold=2, jit_threshold=2),
    "tracejit": EngineConfig(superblock_threshold=2, jit_threshold=2),
}


class FuzzEnv:
    """Kernel-less environment; syscalls/hostcalls just count."""

    def __init__(self, code: bytes, engine: EngineConfig = None,
                 code_prot: Prot = Prot.READ | Prot.EXEC):
        self.context = CpuContext()
        self.icache = ICache(engine=engine)
        self.space = AddressSpace()
        # The trace-JIT contract (repro.cpu.engine): mem_read/mem_write
        # below are exactly space.read/write(.., pkru=ctx.pkru).
        self.mem_space = self.space
        self.cycles = CycleModel()
        self.unit_retired = 0
        self.space.mmap(CODE_BASE, max(len(code), 1), code_prot,
                        name="code", fixed=True)
        self.space.write_kernel(CODE_BASE, code)
        self.space.mmap(DATA_BASE, PAGE_SIZE, Prot.READ | Prot.WRITE,
                        name="data", fixed=True)
        self.space.mmap(STACK_TOP - 16 * PAGE_SIZE, 16 * PAGE_SIZE,
                        Prot.READ | Prot.WRITE, name="stack", fixed=True)
        self.context.rip = CODE_BASE
        self.context.set(Reg.RSP, STACK_TOP - 64)
        self.context.set(Reg.RDI, DATA_BASE)
        self.syscalls = 0
        self.hostcalls = 0

    def mem_fetch(self, addr, n):
        return self.space.fetch(addr, n)

    def mem_read(self, addr, n):
        return self.space.read(addr, n, pkru=self.context.pkru)

    def mem_write(self, addr, data):
        self.space.write(addr, data, pkru=self.context.pkru)

    def on_syscall(self):
        self.syscalls += 1

    def on_hostcall(self, index):
        self.hostcalls += 1

    def state(self):
        ctx = self.context
        return (ctx.rip, tuple(ctx._regs), ctx.flags.zf, ctx.flags.sf,
                self.cycles.cycles, self.syscalls, self.hostcalls,
                bytes(self.space.read_kernel(DATA_BASE, 64)))

    def charge(self, event, times=1):
        self.cycles.charge(event, times)


def random_program(rng: random.Random) -> bytes:
    """A terminating random SimX86 program: a bounded counted loop whose
    body mixes arithmetic, memory traffic, stack ops, forward branches,
    syscalls, and nop sleds."""
    asm = Asm()
    asm.mov_ri(Reg.RCX, rng.randrange(2, 6))        # outer trip count
    asm.label("loop")
    body = rng.randrange(4, 14)
    for i in range(body):
        pick = rng.randrange(12)
        reg = rng.choice(SCRATCH)
        src = rng.choice(SCRATCH)
        if pick == 0:
            asm.mov_ri(reg, rng.randrange(0, 1 << 31))
        elif pick == 1:
            asm.add_rr(reg, src)
        elif pick == 2:
            asm.sub_ri(reg, rng.randrange(0, 1000))
        elif pick == 3:
            asm.xor_rr(reg, src)
        elif pick == 4:
            asm.store(Reg.RDI, reg)                  # 8-byte store
        elif pick == 5:
            asm.load(reg, Reg.RDI)
        elif pick == 6:
            asm.push(reg)
            asm.pop(src)
        elif pick == 7:
            asm.nop(rng.randrange(1, 8))             # single-byte nop sled
        elif pick == 8:
            skip = f"skip_{i}_{rng.randrange(1 << 30)}"
            asm.test_rr(reg, reg)
            asm.je(skip)
            asm.inc(src)
            asm.label(skip)
        elif pick == 9:
            asm.mov_ri(Reg.RAX, rng.randrange(0, 300))
            asm.syscall_()
        elif pick == 10:
            asm.inc(reg)
        else:
            asm.cmp_ri(reg, rng.randrange(0, 100))
    asm.dec(Reg.RCX)
    asm.jne("loop")
    asm.hlt()
    return asm.assemble()


def lockstep(code: bytes, max_insns: int = 4000, quantum: int = 100,
             patch=None, engine: EngineConfig = None,
             code_prot: Prot = Prot.READ | Prot.EXEC):
    """Run *code* through both interpreters, comparing state at every unit
    boundary.  ``patch(space)`` (if given) fires once after ``quantum``
    retired instructions, modelling a remote-core writer (no icache
    shootdown — P5).  *engine* selects the execution tiers on the
    block-mode side; the reference side always single-steps."""
    block_env = FuzzEnv(code, engine=engine, code_prot=code_prot)
    step_env = FuzzEnv(code, code_prot=code_prot)
    retired = 0
    patched = False
    block_err = None
    while retired < max_insns:
        try:
            n = run_unit(block_env, quantum)
        except ReproError as exc:
            block_err = exc
            n = block_env.unit_retired
        # Mirror the exact retire count on the reference interpreter; if the
        # block side faulted, its n-th instruction must fault identically.
        for _ in range(n if block_err is None else n - 1):
            step(step_env)
        if block_err is not None:
            with pytest.raises(type(block_err)):
                step(step_env)
        assert block_env.state() == step_env.state(), \
            f"diverged after {retired}+{n} insns"
        if block_err is not None:
            break
        retired += n
        if patch is not None and not patched and retired >= quantum:
            patch(block_env.space)
            patch(step_env.space)
            patched = True
    return block_env, step_env


@pytest.mark.parametrize("seed", range(12))
def test_lockstep_random_programs(seed):
    rng = random.Random(1000 + seed)
    code = random_program(rng)
    block_env, step_env = lockstep(code)
    assert block_env.state() == step_env.state()


@pytest.mark.parametrize("seed", range(6))
def test_lockstep_with_remote_patch_mid_block(seed):
    """P5: a remote writer flips an imm byte inside already-recorded code
    with no invalidation; both interpreters must stay (identically) stale."""
    rng = random.Random(7000 + seed)
    code = random_program(rng)

    def patch(space):
        # Flip the low imm byte of the trip-count mov at the entry: a
        # single-byte store into a multi-byte instruction, no shootdown.
        space.write_kernel(CODE_BASE + 1, b"\x01")

    block_env, step_env = lockstep(code, patch=patch)
    assert block_env.state() == step_env.state()


def test_lockstep_torn_two_byte_patch():
    """The lazypoline-style torn window: a remote writer replaces a 2-byte
    ``syscall`` one byte at a time, with a serializing flush landing while
    the patch is half-applied.  Both interpreters must stay stale through
    the first byte, then decode the identical torn sequence after the
    flush and fault at the same address."""
    asm = Asm()
    asm.mov_ri(Reg.RCX, 64)
    asm.label("loop")
    asm.mov_ri(Reg.RAX, 39)
    asm.mark("site")
    asm.syscall_()               # the 2-byte patch target: 0f 05
    asm.inc(Reg.RBX)
    asm.dec(Reg.RCX)
    asm.jne("loop")
    asm.hlt()
    code = asm.assemble()
    site = CODE_BASE + asm.marks["site"]

    block_env = FuzzEnv(code)
    step_env = FuzzEnv(code)

    def mirror(budget):
        n = run_unit(block_env, budget)
        for _ in range(n):
            step(step_env)
        assert block_env.state() == step_env.state()
        return n

    # A few loop iterations so lines are decoded and blocks installed.
    done = 0
    while block_env.syscalls < 4:
        done += mirror(10)
    assert block_env.icache.block_hits > 0

    # Remote writer lands byte one of the patch (0f 05 -> cc 05): the torn
    # window.  No shootdown — both cores keep executing the stale syscall.
    for env in (block_env, step_env):
        env.space.write_kernel(site, b"\xcc")
    stale_syscalls = block_env.syscalls
    while block_env.syscalls < stale_syscalls + 3:
        mirror(10)
    assert step_env.syscalls == block_env.syscalls > stale_syscalls

    # A serializing flush on both cores lands INSIDE the torn window: both
    # now fetch the half-patched bytes and fault identically at the int3.
    block_env.icache.flush_all()
    step_env.icache.flush_all()
    block_err = step_err = None
    try:
        for _ in range(64):
            run_unit(block_env, 10)
    except Breakpoint as exc:
        block_err = exc
    try:
        for _ in range(640):
            step(step_env)
    except Breakpoint as exc:
        step_err = exc
    assert block_err is not None and step_err is not None
    assert block_err.address == step_err.address == site
    assert block_env.state() == step_env.state()


# --------------------------------------------------------- engine tiers


@pytest.mark.parametrize("engine", list(ENGINES))
@pytest.mark.parametrize("seed", range(6))
def test_lockstep_engine_tiers(seed, engine):
    """Every tier (chaining, interpreted superblocks, trace JIT) stays in
    lockstep with the single-step reference on random programs."""
    rng = random.Random(3000 + seed)
    code = random_program(rng)
    block_env, step_env = lockstep(code, engine=ENGINES[engine])
    assert block_env.state() == step_env.state()


def _smc_chain_trace_program() -> Asm:
    """A hot loop (chains, forms a superblock, compiles a trace), then a
    same-core one-byte store *into that loop's code*, then a second hot
    loop.  The store writes the byte's existing value — the bytes do not
    change, but the invalidation protocol must fire all the same."""
    asm = Asm()
    asm.mov_ri(Reg.RCX, 24)
    asm.mark("hot")
    asm.label("hot")
    asm.inc(Reg.RAX)
    asm.add_rr(Reg.RBX, Reg.RAX)
    asm.dec(Reg.RCX)
    asm.jne("hot")
    asm.lea_rip_label(Reg.RSI, "hot")
    asm.mov_ri(Reg.RDX, 0x48)        # the REX.W byte of `inc rax` at hot
    asm.store8(Reg.RSI, Reg.RDX)
    asm.mov_ri(Reg.RCX, 24)
    asm.label("second")
    asm.inc(Reg.RAX)
    asm.add_rr(Reg.RBX, Reg.RAX)
    asm.dec(Reg.RCX)
    asm.jne("second")
    asm.hlt()
    return asm


@pytest.mark.parametrize("engine", list(ENGINES))
def test_smc_torture_lockstep(engine):
    """P5-style torture: the store into the chained/traced loop page must
    leave architectural state identical to single-stepping under every
    engine configuration."""
    code = _smc_chain_trace_program().assemble()
    block_env, step_env = lockstep(code, engine=ENGINES[engine],
                                   code_prot=Prot.READ | Prot.WRITE
                                   | Prot.EXEC)
    assert block_env.state() == step_env.state()


def test_smc_torture_unlinks_chain_and_dooms_trace():
    """The same program, instrumented: the hot loop's superblock must have
    compiled a trace before the store, and the store must doom it (and
    unlink chained blocks) via the ordinary invalidation path."""
    asm = _smc_chain_trace_program()
    code = asm.assemble()
    hot_entry = CODE_BASE + asm.marks["hot"]
    env = FuzzEnv(code, engine=ENGINES["tracejit"],
                  code_prot=Prot.READ | Prot.WRITE | Prot.EXEC)
    doomed_sb = None
    halted = False
    while not halted:
        try:
            run_unit(env, 100)
        except Halt:
            halted = True
        if doomed_sb is None:
            block = env.icache._blocks.get(hot_entry)
            if block is not None and block.superblock is not None:
                doomed_sb = block.superblock
    assert doomed_sb is not None, "hot loop never formed a superblock"
    assert doomed_sb.trace not in (None, False), \
        "hot loop superblock never compiled a trace"
    assert not doomed_sb.valid, "store into the loop page did not doom"
    ic = env.icache
    assert ic.traces_compiled >= 1 and ic.trace_hits >= 1
    assert ic.chain_follows >= 1
    assert ic.invalidation_unlinks >= 1


@pytest.mark.parametrize("engine", list(ENGINES))
def test_smc_store_inside_hot_loop(engine):
    """A loop whose body stores into its *own* code span every iteration.

    The store dooms each in-progress block recording (the PR 2 rec-doom
    protocol), so no block — and hence no chain, superblock, or trace —
    is ever installed over the continuously-rewritten span; execution
    degrades to safe re-recording and must match single-stepping
    exactly under every engine configuration."""
    asm = Asm()
    asm.mov_ri(Reg.RCX, 30)
    asm.lea_rip_label(Reg.RSI, "site")
    asm.mov_ri(Reg.RDX, 0x90)        # nop — byte value is unchanged
    asm.label("loop")
    asm.store8(Reg.RSI, Reg.RDX)
    asm.label("site")
    asm.nop()
    asm.inc(Reg.RAX)
    asm.dec(Reg.RCX)
    asm.jne("loop")
    asm.hlt()
    code = asm.assemble()
    block_env, step_env = lockstep(code, engine=ENGINES[engine],
                                   code_prot=Prot.READ | Prot.WRITE
                                   | Prot.EXEC)
    assert block_env.state() == step_env.state()
