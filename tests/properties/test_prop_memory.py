"""Property-based tests on the memory substrate (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.memory import AddressBitmap, AddressSpace, PAGE_SIZE, Prot, RobinHoodSet

ADDRESSES = st.integers(min_value=0, max_value=(1 << 40) - 1)


class TestRobinHoodSetModel:
    """The robin-hood set must behave exactly like a built-in set."""

    @given(st.lists(st.tuples(st.sampled_from(["add", "discard", "query"]),
                              st.integers(min_value=0, max_value=200)),
                    max_size=200))
    @settings(max_examples=200)
    def test_against_model(self, ops):
        real = RobinHoodSet(initial_capacity=4)
        model = set()
        for op, value in ops:
            if op == "add":
                assert real.add(value) == (value not in model)
                model.add(value)
            elif op == "discard":
                assert real.discard(value) == (value in model)
                model.discard(value)
            else:
                assert (value in real) == (value in model)
            assert len(real) == len(model)
        assert sorted(real) == sorted(model)

    @given(st.sets(st.integers(min_value=0, max_value=(1 << 48) - 1),
                   max_size=100))
    @settings(max_examples=100)
    def test_growth_preserves_membership(self, values):
        real = RobinHoodSet(initial_capacity=2)
        for value in values:
            real.add(value)
        assert all(value in real for value in values)
        assert len(real) == len(values)


class TestAddressBitmapModel:
    @given(st.lists(st.tuples(st.sampled_from(["set", "clear", "test"]),
                              ADDRESSES), max_size=150))
    @settings(max_examples=150)
    def test_against_model(self, ops):
        bitmap = AddressBitmap()
        model = set()
        for op, address in ops:
            if op == "set":
                bitmap.set(address)
                model.add(address)
            elif op == "clear":
                bitmap.clear(address)
                model.discard(address)
            else:
                assert bitmap.test(address) == (address in model)
        assert len(bitmap) == len(model)


class TestAddressSpaceRoundtrip:
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=4 * PAGE_SIZE - 1),
        st.binary(min_size=1, max_size=64)), min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_write_read_roundtrip(self, writes):
        space = AddressSpace()
        base = space.mmap(None, 5 * PAGE_SIZE, Prot.READ | Prot.WRITE)
        shadow = bytearray(5 * PAGE_SIZE)
        for offset, data in writes:
            space.write(base + offset, data)
            shadow[offset:offset + len(data)] = data
        assert space.read(base, 5 * PAGE_SIZE) == bytes(shadow)

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=6))
    @settings(max_examples=60)
    def test_mprotect_is_page_exact(self, pages, flip_page):
        space = AddressSpace()
        base = space.mmap(None, pages * PAGE_SIZE, Prot.READ | Prot.WRITE)
        if flip_page < pages:
            space.mprotect(base + flip_page * PAGE_SIZE, PAGE_SIZE,
                           Prot.READ)
        for page in range(pages):
            prot = space.prot_at(base + page * PAGE_SIZE)
            expected = (Prot.READ if page == flip_page and flip_page < pages
                        else Prot.READ | Prot.WRITE)
            assert prot == expected

    @given(st.data())
    @settings(max_examples=60)
    def test_fork_copy_divergence(self, data):
        space = AddressSpace()
        base = space.mmap(None, PAGE_SIZE, Prot.READ | Prot.WRITE)
        initial = data.draw(st.binary(min_size=8, max_size=8))
        space.write(base, initial)
        child = space.fork_copy()
        mutation = data.draw(st.binary(min_size=8, max_size=8))
        child.write(base, mutation)
        assert space.read(base, 8) == initial
        assert child.read(base, 8) == mutation
