"""Property-based tests on the offline-log format and VFS paths."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.logs import SiteLog
from repro.kernel.vfs import VFS

REGION_PATHS = st.from_regex(r"/[a-z][a-z0-9_.\-]{0,12}(/[a-z0-9_.\-]{1,12}){0,3}",
                             fullmatch=True)
OFFSETS = st.integers(min_value=0, max_value=(1 << 32) - 1)
ENTRIES = st.lists(st.tuples(REGION_PATHS, OFFSETS), max_size=60)


@given(ENTRIES)
@settings(max_examples=150)
def test_render_parse_roundtrip(entries):
    log = SiteLog("/usr/bin/app")
    for region, offset in entries:
        log.add(region, offset)
    parsed = SiteLog.parse("/usr/bin/app", log.render())
    assert list(parsed) == list(log)


@given(ENTRIES)
@settings(max_examples=100)
def test_dedup_and_order_preserved(entries):
    log = SiteLog("/usr/bin/app")
    seen = []
    for region, offset in entries:
        expected_new = (region, offset) not in seen
        assert log.add(region, offset) == expected_new
        if expected_new:
            seen.append((region, offset))
    assert list(log) == seen
    assert len(log) == len(seen)


@given(ENTRIES, ENTRIES)
@settings(max_examples=100)
def test_merge_is_set_union_in_order(first, second):
    a = SiteLog("/p")
    for region, offset in first:
        a.add(region, offset)
    b = SiteLog("/p")
    for region, offset in second:
        b.add(region, offset)
    union = {*a, *b}
    a.merge(b)
    assert set(a) == union
    assert len(a) == len(union)


@given(st.from_regex(r"/usr/bin/[a-z]{1,10}", fullmatch=True), ENTRIES)
@settings(max_examples=60)
def test_vfs_save_load_roundtrip(program, entries):
    vfs = VFS()
    log = SiteLog(program)
    for region, offset in entries:
        log.add(region, offset)
    log.save(vfs)
    assert list(SiteLog.load(vfs, program)) == list(log)
