"""Record/replay determinism property.

One fault-injected syscall-stress run is recorded into a bundle; then:

- replay restored from **every** checkpoint must reproduce the recorded
  event suffix byte-for-byte (canonical JSON, ``seq`` excluded);
- replay from the very start (no checkpoint) must as well;
- the full replay must be byte-identical under **each engine-matrix
  tier** (single-step, no-chain, no-superblock, no-trace-jit, full) —
  the execution engine must never leak into the semantic stream;
- a tampered recorded stream must be *detected* as a divergence — the
  comparison is a tripwire, not a formality.

Any failure here is a determinism bug by construction.
"""

import json
import shutil

import pytest

from repro.api import FaultConfig, RunConfig, build_schedule, run
from repro.replay import SKIP_TYPES, load_bundle, replay_bundle

SEED = 11

#: Engine-tier environment hatches (read at Kernel construction).
ENGINE_MATRIX = {
    "full": {},
    "no-trace-jit": {"REPRO_NO_TRACE_JIT": "1"},
    "no-superblock": {"REPRO_NO_SUPERBLOCK": "1"},
    "no-chain": {"REPRO_NO_CHAIN": "1"},
    "single-step": {"REPRO_NO_BLOCK_CACHE": "1"},
}


@pytest.fixture(scope="module")
def bundle_dir(tmp_path_factory):
    """Record one fault-injected stress run (shared by every test)."""
    path = tmp_path_factory.mktemp("replay") / "bundle"
    schedule = build_schedule(
        SEED, FaultConfig(errno_rate=0.08, signal_count=3))
    run(RunConfig(mechanism="K23-ultra", workload="stress", seed=SEED,
                  schedule=schedule, params=(("iterations", 150),),
                  record=str(path)))
    return str(path)


@pytest.fixture(scope="module")
def bundle(bundle_dir):
    return load_bundle(bundle_dir)


def test_recording_landed_checkpoints(bundle):
    assert bundle.meta["checkpoints"], \
        "the stress run must land at least one checkpoint"
    assert bundle.final_seq > 0
    seqs = [cp["seq"] for cp in bundle.meta["checkpoints"]]
    assert seqs == sorted(seqs)


def test_replay_from_every_checkpoint_is_byte_identical(bundle_dir, bundle):
    cps = bundle.meta["checkpoints"]
    for i, _cp in enumerate(cps):
        # to_seq lands strictly after checkpoint i and at/before i+1, so
        # checkpoint_before() must pick exactly checkpoint i.
        to_seq = (cps[i + 1]["seq"] if i + 1 < len(cps)
                  else bundle.final_seq)
        result = replay_bundle(bundle_dir, to_seq=to_seq)
        assert result.checkpoint_index == i
        assert result.compared > 0
        assert result.ok, (f"checkpoint {i}: {result.summary()}; "
                           f"{result.divergence}")


def test_replay_from_start_is_byte_identical(bundle_dir, bundle):
    first_cp_seq = bundle.meta["checkpoints"][0]["seq"]
    to_seq = max(1, first_cp_seq - 1)
    result = replay_bundle(bundle_dir, to_seq=to_seq)
    assert result.checkpoint_index is None
    assert result.ok, f"{result.summary()}; {result.divergence}"


@pytest.mark.parametrize("tier", sorted(ENGINE_MATRIX))
def test_full_replay_under_each_engine_tier(bundle_dir, tier, monkeypatch):
    # The bundle was recorded under the full tier stack; the semantic
    # stream must not depend on which execution tier replays it.
    for var, value in ENGINE_MATRIX[tier].items():
        monkeypatch.setenv(var, value)
    result = replay_bundle(bundle_dir)
    assert result.compared > 0
    assert result.ok, f"[{tier}] {result.summary()}; {result.divergence}"


def test_tampered_stream_is_flagged_as_divergence(bundle_dir, bundle,
                                                  tmp_path):
    # Corrupt one comparable recorded event after the last checkpoint;
    # replay must report a divergence at (or before) that record — a
    # silent pass here would mean the comparison can't catch real bugs.
    tampered = tmp_path / "tampered"
    shutil.copytree(bundle_dir, tampered)
    events_path = tampered / "events.jsonl"
    lines = events_path.read_text().splitlines()
    last_cp_seq = bundle.meta["checkpoints"][-1]["seq"]
    victim = None
    for i in range(len(lines) - 1, -1, -1):
        record = json.loads(lines[i])
        if (record.get("type") not in SKIP_TYPES
                and record.get("seq", 0) > last_cp_seq):
            victim = i
            break
    assert victim is not None
    record = json.loads(lines[victim])
    record["tampered"] = True
    lines[victim] = json.dumps(record, sort_keys=True)
    events_path.write_text("\n".join(lines) + "\n")

    result = replay_bundle(str(tampered))
    assert not result.ok
    assert result.divergence is not None
    assert result.divergence["want"] != result.divergence["got"]
