"""Property-based tests on the SimX86 encoding layer (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.arch import Asm, decode, linear_sweep
from repro.arch.disassembler import find_syscall_sites_bytescan
from repro.arch.isa import Mnemonic
from repro.arch.registers import Reg
from repro.errors import DecodeError

REGS = st.sampled_from(list(Reg))
LOW_REGS = st.sampled_from([Reg.RAX, Reg.RCX, Reg.RDX, Reg.RBX])
BASE_REGS = st.sampled_from([r for r in Reg
                             if r.low3 not in (0b100, 0b101)])
IMM64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
IMM32S = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


@st.composite
def instruction_builders(draw):
    """One (emit, expected-mnemonic) pair drawn from the full ISA."""
    choice = draw(st.sampled_from([
        "nop", "ret", "syscall", "sysenter", "call_reg", "jmp_reg",
        "push", "pop", "mov_ri", "mov_rr", "load", "store", "add_rr",
        "sub_rr", "cmp_rr", "xor_rr", "test_rr", "add_ri", "sub_ri",
        "cmp_ri", "inc", "dec", "hostcall", "endbr64", "cpuid", "mfence",
    ]))
    reg = draw(REGS)
    reg2 = draw(REGS)
    base = draw(BASE_REGS)
    imm = draw(IMM64)
    imm32 = draw(IMM32S)
    idx = draw(st.integers(min_value=0, max_value=0xFFFF))

    table = {
        "nop": (lambda a: a.nop(), Mnemonic.NOP),
        "ret": (lambda a: a.ret(), Mnemonic.RET),
        "syscall": (lambda a: a.syscall_(), Mnemonic.SYSCALL),
        "sysenter": (lambda a: a.sysenter_(), Mnemonic.SYSENTER),
        "call_reg": (lambda a: a.call_reg(reg), Mnemonic.CALL_REG),
        "jmp_reg": (lambda a: a.jmp_reg(reg), Mnemonic.JMP_REG),
        "push": (lambda a: a.push(reg), Mnemonic.PUSH),
        "pop": (lambda a: a.pop(reg), Mnemonic.POP),
        "mov_ri": (lambda a: a.mov_ri(reg, imm), Mnemonic.MOV_RI),
        "mov_rr": (lambda a: a.mov_rr(reg, reg2), Mnemonic.MOV_RR),
        "load": (lambda a: a.load(reg, base), Mnemonic.MOV_LOAD),
        "store": (lambda a: a.store(base, reg), Mnemonic.MOV_STORE),
        "add_rr": (lambda a: a.add_rr(reg, reg2), Mnemonic.ADD_RR),
        "sub_rr": (lambda a: a.sub_rr(reg, reg2), Mnemonic.SUB_RR),
        "cmp_rr": (lambda a: a.cmp_rr(reg, reg2), Mnemonic.CMP_RR),
        "xor_rr": (lambda a: a.xor_rr(reg, reg2), Mnemonic.XOR_RR),
        "test_rr": (lambda a: a.test_rr(reg, reg2), Mnemonic.TEST_RR),
        "add_ri": (lambda a: a.add_ri(reg, imm32), Mnemonic.ADD_RI),
        "sub_ri": (lambda a: a.sub_ri(reg, imm32), Mnemonic.SUB_RI),
        "cmp_ri": (lambda a: a.cmp_ri(reg, imm32), Mnemonic.CMP_RI),
        "inc": (lambda a: a.inc(reg), Mnemonic.INC),
        "dec": (lambda a: a.dec(reg), Mnemonic.DEC),
        "hostcall": (lambda a: a.hostcall(idx), Mnemonic.HOSTCALL),
        "endbr64": (lambda a: a.endbr64(), Mnemonic.ENDBR64),
        "cpuid": (lambda a: a.cpuid(), Mnemonic.CPUID),
        "mfence": (lambda a: a.mfence(), Mnemonic.MFENCE),
    }
    return table[choice]


@given(instruction_builders())
@settings(max_examples=300)
def test_single_instruction_roundtrip(builder):
    """assemble → decode recovers the mnemonic and consumes every byte."""
    emit, expected = builder
    asm = Asm()
    emit(asm)
    code = asm.assemble()
    insn = decode(code)
    assert insn.mnemonic is expected
    assert insn.length == len(code)
    assert insn.raw == code


@given(st.lists(instruction_builders(), min_size=1, max_size=20))
@settings(max_examples=150)
def test_sequence_sweeps_cleanly(builders):
    """A pure instruction stream linear-sweeps with no desync and the sweep
    partitions the bytes exactly."""
    asm = Asm()
    boundaries = []
    for emit, _expected in builders:
        boundaries.append(asm.offset)
        emit(asm)
    code = asm.assemble()
    items = list(linear_sweep(code))
    assert all(not item.is_desync for item in items)
    assert [item.offset for item in items] == boundaries
    assert sum(item.instruction.length for item in items) == len(code)


@given(st.lists(instruction_builders(), min_size=1, max_size=15))
@settings(max_examples=150)
def test_bytescan_superset_of_true_sites(builders):
    """The byte scan never misses a genuine syscall/sysenter boundary."""
    asm = Asm()
    true_sites = []
    for emit, expected in builders:
        if expected in (Mnemonic.SYSCALL, Mnemonic.SYSENTER):
            true_sites.append(asm.offset)
        emit(asm)
    code = asm.assemble()
    scan = set(find_syscall_sites_bytescan(code))
    assert set(true_sites) <= scan


@given(st.binary(min_size=0, max_size=64))
@settings(max_examples=300)
def test_decoder_total_on_arbitrary_bytes(blob):
    """decode() either returns a well-formed instruction or raises
    DecodeError — never crashes, never returns nonsense lengths."""
    try:
        insn = decode(blob)
    except DecodeError:
        return
    assert 1 <= insn.length <= len(blob)
    assert insn.raw == blob[:insn.length]
    assert insn.text()  # renders


@given(st.binary(min_size=0, max_size=128))
@settings(max_examples=200)
def test_sweep_covers_every_byte(blob):
    """Sweep items (instructions + desync skips) partition any buffer."""
    covered = 0
    for item in linear_sweep(blob):
        covered += 1 if item.is_desync else item.instruction.length
    assert covered == len(blob)
