"""munmap vs the block cache and the single-page fast path.

Regression coverage for the interaction the fault-injection work fixed:
unmapping a page must invalidate every recorded basic block and the memory
fast path over it — including pages in the *middle* of a larger region —
in both interpreter modes.  Stale translations executing from an unmapped
page would be an app-visible divergence from real silicon, which faults.
"""

import pytest

from repro.errors import SegmentationFault
from repro.kernel import Kernel
from repro.kernel.syscalls import Nr
from repro.memory import AddressSpace, PAGE_SIZE, Prot
from repro.workloads.programs import ProgramBuilder

BASE = 0x40_0000


class TestAddressSpacePartialUnmap:
    def test_middle_pages_unmapped_edges_survive(self):
        space = AddressSpace()
        space.mmap(BASE, 4 * PAGE_SIZE, Prot.READ | Prot.WRITE,
                   name="blob", fixed=True)
        space.write_kernel(BASE, b"\x11" * (4 * PAGE_SIZE))
        space.munmap(BASE + PAGE_SIZE, 2 * PAGE_SIZE)
        assert space.is_mapped(BASE, PAGE_SIZE)
        assert not space.is_mapped(BASE + PAGE_SIZE, PAGE_SIZE)
        assert not space.is_mapped(BASE + 2 * PAGE_SIZE, PAGE_SIZE)
        assert space.is_mapped(BASE + 3 * PAGE_SIZE, PAGE_SIZE)
        assert space.read_kernel(BASE, 4) == b"\x11" * 4
        with pytest.raises(SegmentationFault):
            space.read(BASE + PAGE_SIZE, 4)
        # The region split into two same-named remnants.
        names = [r.name for r in space.regions if r.name == "blob"]
        assert len(names) == 2

    def test_fast_path_invalidated_by_partial_unmap(self):
        space = AddressSpace()
        space.mmap(BASE, 4 * PAGE_SIZE, Prot.READ | Prot.WRITE,
                   name="blob", fixed=True)
        addr = BASE + PAGE_SIZE + 8
        space.write(addr, b"\x22" * 8)
        # Warm the single-page fast path on the soon-to-vanish page.
        assert space.read(addr, 8) == b"\x22" * 8
        space.munmap(BASE + PAGE_SIZE, PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            space.read(addr, 8)
        with pytest.raises(SegmentationFault):
            space.write(addr, b"\x33")


class TestKernelStaleCode:
    @pytest.mark.parametrize("block_cache", [True, False])
    def test_unmapped_code_page_faults_not_replays(self, block_cache):
        """A program warms a function's translation, an interposer-style
        host actor munmaps that page mid-run, and the next call must take
        a SIGSEGV — never replay the stale recorded block."""
        kernel = Kernel(seed=7, aslr=False)
        kernel.block_cache_enabled = block_cache

        def unmap_func_page(thread) -> None:
            base, image, _ns = thread.process.loaded_images["/bin/unmapself"]
            func = base + image.asm.labels["func"]
            assert func % PAGE_SIZE == 0
            kernel.do_syscall(thread, Nr.munmap,
                              [func, PAGE_SIZE, 0, 0, 0, 0],
                              origin="interposer-internal")

        builder = ProgramBuilder("/bin/unmapself")
        builder.start()
        builder.asm.call("func")            # warm: record func's block
        builder.asm.hostcall(
            kernel.hostcalls.register(unmap_func_page, "unmap_func_page"))
        builder.asm.call("func")            # must fault, not replay
        builder.exit(0)
        builder.asm.align(PAGE_SIZE)
        builder.label("func")
        builder.asm.endbr64()
        builder.asm.ret()
        builder.register(kernel)

        process = kernel.spawn_process("/bin/unmapself")
        kernel.run_process(process, max_steps=200_000)
        assert process.exited
        assert process.exit_status != 0
        assert process.core_dumped  # SIGSEGV dumps core

    def test_shootdown_hooks_fire_for_munmap_and_map_fixed_only(self):
        """munmap and mmap(MAP_FIXED) broadcast icache shootdowns (the IPI
        model); mprotect deliberately does not — stale decodes across a
        permission flip are the P5 behaviour the simulator preserves."""
        from repro.faultinject.engine import FaultInjector
        from repro.faultinject.schedule import FaultConfig, build_schedule
        from repro.workloads.stress import STRESS_PATH, build_stress

        kernel = Kernel(seed=7, aslr=False)
        build_stress(4).register(kernel)
        injector = FaultInjector(kernel, build_schedule(0, FaultConfig()),
                                 main_phase_only=False)
        process = kernel.spawn_process(STRESS_PATH)
        thread = process.main_thread
        base = kernel.do_syscall(
            thread, Nr.mmap, [0, PAGE_SIZE, 0x3, 0x22, (1 << 64) - 1, 0],
            origin="interposer-internal")
        assert base > 0
        assert injector.flushes == 0        # plain mmap: no shootdown
        kernel.do_syscall(thread, Nr.mprotect, [base, PAGE_SIZE, 0x5, 0, 0, 0],
                          origin="interposer-internal")
        assert injector.flushes == 0        # mprotect: stale decodes stay
        assert injector.prot_changes == 1
        kernel.do_syscall(thread, Nr.munmap, [base, PAGE_SIZE, 0, 0, 0, 0],
                          origin="interposer-internal")
        assert injector.flushes == 1        # munmap: IPI shootdown
        kernel.do_syscall(
            thread, Nr.mmap,
            [base, PAGE_SIZE, 0x3, 0x22 | 0x10, (1 << 64) - 1, 0],
            origin="interposer-internal")
        assert injector.flushes == 2        # MAP_FIXED overwrite: shootdown
