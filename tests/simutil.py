"""Shared helpers for building and running small simulated programs."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kernel import Kernel
from repro.workloads.programs import ProgramBuilder, data_ref


def make_hello(path: str = "/usr/bin/hello", text: str = "hello\n") -> ProgramBuilder:
    """A program that writes *text* to stdout and exits 0."""
    builder = ProgramBuilder(path)
    builder.string("msg", text)
    builder.start()
    builder.libc("write", 1, data_ref("msg"), len(text))
    builder.exit(0)
    return builder


def spawn_and_run(kernel: Kernel, path: str,
                  argv: Optional[List[str]] = None,
                  env: Optional[Dict[str, str]] = None,
                  max_steps: int = 2_000_000):
    """Spawn *path* and run the machine until it exits."""
    process = kernel.spawn_process(path, argv, env)
    kernel.run_process(process, max_steps=max_steps)
    return process


def syscall_names(kernel: Kernel, pid: int) -> List[str]:
    from repro.kernel.syscalls import Nr

    return [Nr.name_of(r.nr) for r in kernel.app_requested_syscalls(pid)]
