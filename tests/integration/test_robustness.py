"""Robustness and failure-injection tests.

The reproduction's claims must be invariant to simulation incidentals —
ASLR seeds, scheduler quantum — and its components must fail safely under
adversarial inputs (tampered logs, truncated logs, mid-run faults).
"""

import pytest

from repro.core import K23Interposer, OfflinePhase
from repro.core.logs import LOG_ROOT, SiteLog, seal_logs
from repro.core.offline import import_logs
from repro.kernel import Kernel
from repro.workloads.coreutils import install_coreutils
from tests.simutil import make_hello, spawn_and_run


class TestSeedInvariance:
    @pytest.mark.parametrize("seed", [1, 7, 99, 1234])
    def test_k23_exhaustive_across_aslr_seeds(self, seed):
        """The (region, offset) log currency must survive any ASLR layout."""
        offline_kernel = Kernel(seed=seed)
        install_coreutils(offline_kernel, names=["/usr/bin/cat"])
        offline = OfflinePhase(offline_kernel)
        offline.run("/usr/bin/cat")
        kernel = Kernel(seed=seed * 31 + 5)
        install_coreutils(kernel, names=["/usr/bin/cat"])
        import_logs(kernel, offline.export())
        K23Interposer(kernel, variant="ultra").install()
        process = spawn_and_run(kernel, "/usr/bin/cat")
        assert process.exit_status == 0
        assert kernel.uninterposed_syscalls(process.pid) == []

    @pytest.mark.parametrize("seed", [3, 17])
    def test_offline_logs_identical_across_seeds(self, seed):
        """Unique-site sets are layout-independent by construction."""
        logs = []
        for run_seed in (seed, seed + 1000):
            kernel = Kernel(seed=run_seed)
            install_coreutils(kernel, names=["/usr/bin/pwd"])
            offline = OfflinePhase(kernel)
            _proc, log = offline.run("/usr/bin/pwd")
            logs.append(sorted(log))
        assert logs[0] == logs[1]


class TestSchedulerInvariance:
    @pytest.mark.parametrize("quantum", [1, 7, 100, 1000])
    def test_results_independent_of_quantum(self, quantum):
        kernel = Kernel(seed=5)
        kernel.quantum = quantum
        make_hello().register(kernel)
        process = spawn_and_run(kernel, "/usr/bin/hello")
        assert process.exit_status == 0
        assert bytes(process.output) == b"hello\n"

    def test_cycle_counts_deterministic(self):
        totals = []
        for _ in range(2):
            kernel = Kernel(seed=8)
            make_hello().register(kernel)
            spawn_and_run(kernel, "/usr/bin/hello")
            totals.append(kernel.cycles.cycles)
        assert totals[0] == totals[1]


class TestAdversarialLogs:
    def _online(self, log_text: str, seed=66):
        kernel = Kernel(seed=seed)
        install_coreutils(kernel, names=["/usr/bin/pwd"])
        import_logs(kernel, {"/usr/bin/pwd": log_text})
        k23 = K23Interposer(kernel, variant="ultra").install()
        process = spawn_and_run(kernel, "/usr/bin/pwd")
        return kernel, k23, process

    def test_log_pointing_into_data_is_skipped(self):
        """A tampered entry aimed at non-syscall bytes must be skipped by
        libK23's load-time validation, never rewritten."""
        forged = SiteLog("/usr/bin/pwd")
        forged.add("/usr/bin/pwd", 0)  # _start's endbr64
        kernel, k23, process = self._online(forged.render())
        assert process.exit_status == 0
        state = process.interposer_state["k23"]
        assert state["rewritten"] == []
        assert state["skipped_log_entries"]
        # Correctness is carried entirely by the SUD fallback.
        assert kernel.uninterposed_syscalls(process.pid) == []

    def test_log_for_unknown_region_is_skipped(self):
        forged = SiteLog("/usr/bin/pwd")
        forged.add("/opt/nonexistent.so", 1234)
        kernel, k23, process = self._online(forged.render())
        assert process.exit_status == 0
        state = process.interposer_state["k23"]
        assert state["skipped_log_entries"][0][2] == "region not loaded"

    def test_out_of_bounds_offset_is_skipped(self):
        forged = SiteLog("/usr/bin/pwd")
        forged.add("/usr/bin/pwd", 1 << 30)
        kernel, k23, process = self._online(forged.render())
        assert process.exit_status == 0
        assert process.interposer_state["k23"]["rewritten"] == []

    def test_post_seal_tampering_impossible(self):
        kernel = Kernel(seed=67)
        install_coreutils(kernel, names=["/usr/bin/pwd"])
        offline = OfflinePhase(kernel)
        offline.run("/usr/bin/pwd")
        offline.persist(seal=True)
        from repro.errors import VFSError

        with pytest.raises(VFSError):
            kernel.vfs.append(f"{LOG_ROOT}/pwd.log", b"/usr/bin/pwd,0\n")

    def test_empty_log_degrades_to_fallback_only(self):
        kernel, k23, process = self._online("")
        assert process.exit_status == 0
        vias = {via for _nr, via in k23.handled[process.pid]}
        assert "rewrite" not in vias
        assert kernel.uninterposed_syscalls(process.pid) == []


class TestMidRunFaults:
    def test_killed_worker_does_not_wedge_the_machine(self):
        """Killing a server worker mid-drive: the driver's stall guard
        terminates the measurement instead of spinning."""
        from repro.workloads.clients import wrk
        from repro.workloads.nginx import NGINX_PORT, install_nginx

        kernel = Kernel(seed=68)
        path = install_nginx(kernel, workers=1, file_size_kb=0)
        kernel.spawn_process(path)
        kernel.run(max_steps=1_000_000)
        generator = wrk(kernel, NGINX_PORT, connections=1)
        generator.warmup(1)
        worker = next(p for p in kernel.processes.values() if p.parent)
        worker.terminate(137)
        result = generator.drive(10)
        assert result.requests < 10
        assert generator.failures > 0

    def test_deleted_served_file_yields_errors_not_hangs(self):
        from repro.workloads.clients import wrk
        from repro.workloads.http import WWW_EMPTY
        from repro.workloads.nginx import NGINX_PORT, install_nginx

        kernel = Kernel(seed=69)
        path = install_nginx(kernel, workers=1, file_size_kb=0)
        kernel.spawn_process(path)
        kernel.run(max_steps=1_000_000)
        generator = wrk(kernel, NGINX_PORT, connections=1)
        generator.warmup(1)
        kernel.vfs.unlink(WWW_EMPTY)
        result = generator.drive(4)
        # Responses still flow (the server sends headers; openat fails and
        # read on the bad fd returns an error the server tolerates).
        assert result.requests + generator.failures >= 4
