"""Example-script smoke tests: every shipped example must run green (each
script asserts its own expected outcomes internally)."""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> None:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "exhaustive interposition confirmed" in out


def test_strace_tool(capsys):
    run_example("strace_tool.py")
    out = capsys.readouterr().out
    assert "coverage matches the paper's P2a/P2b analysis" in out


def test_sandbox(capsys):
    run_example("sandbox.py")
    out = capsys.readouterr().out
    assert "sandbox held on every path" in out


def test_offline_online_workflow(capsys):
    run_example("offline_online_workflow.py")
    out = capsys.readouterr().out
    assert "missed syscalls  : 0" in out


def test_reliability_injector(capsys):
    run_example("reliability_injector.py")
    out = capsys.readouterr().out
    assert "fault-injection surface verified" in out


def test_nvariant_monitor(capsys):
    run_example("nvariant_monitor.py")
    out = capsys.readouterr().out
    assert "NO - attack invisible" in out       # zpoline
    assert "yes - sequence diverged" in out     # K23


@pytest.mark.slow
def test_pitfall_tour(capsys):
    run_example("pitfall_tour.py")
    out = capsys.readouterr().out
    assert "matches the paper's Table 3 exactly" in out
