"""Cross-mechanism exhaustiveness invariants over real workloads.

The paper's central correctness claim: only K23 (with its ptrace stage and
SUD fallback) interposes *every* application syscall; the others have
characteristic, explainable blind spots.
"""

import pytest

from repro.core import K23Interposer, OfflinePhase
from repro.core.offline import import_logs
from repro.interposers import LazypolineInterposer, ZpolineInterposer
from repro.kernel import Kernel
from repro.workloads.coreutils import install_coreutils

COREUTILS = ["/usr/bin/pwd", "/usr/bin/cat", "/usr/bin/clear"]


def run_k23(path, seed=13, variant="ultra"):
    offline_kernel = Kernel(seed=seed)
    install_coreutils(offline_kernel, names=[path])
    offline = OfflinePhase(offline_kernel)
    offline.run(path)
    kernel = Kernel(seed=seed + 1)
    install_coreutils(kernel, names=[path])
    import_logs(kernel, offline.export())
    k23 = K23Interposer(kernel, variant=variant).install()
    process = kernel.spawn_process(path)
    kernel.run_process(process)
    return kernel, k23, process


@pytest.mark.parametrize("path", COREUTILS)
def test_k23_interposes_everything(path):
    kernel, k23, process = run_k23(path)
    assert process.exit_status == 0
    assert kernel.uninterposed_syscalls(process.pid) == []
    assert not [e for e in kernel.vdso_calls if e[0] == process.pid]


@pytest.mark.parametrize("path", COREUTILS)
def test_k23_output_identical_to_native(path):
    native_kernel = Kernel(seed=21)
    install_coreutils(native_kernel, names=[path])
    native = native_kernel.spawn_process(path)
    native_kernel.run_process(native)

    _kernel, _k23, interposed = run_k23(path, seed=22)
    assert bytes(interposed.output) == bytes(native.output)
    assert interposed.exit_status == native.exit_status


@pytest.mark.parametrize("variant", ["default", "ultra", "ultra+"])
def test_k23_variants_all_exhaustive(variant):
    kernel, k23, process = run_k23("/usr/bin/pwd", seed=31, variant=variant)
    assert kernel.uninterposed_syscalls(process.pid) == []


def test_zpoline_misses_are_exactly_premain(kernel):
    """zpoline's blind spot on a clean static binary is precisely the
    pre-constructor window (P2b) — nothing more."""
    install_coreutils(kernel, names=["/usr/bin/pwd"])
    ZpolineInterposer(kernel).install()
    process = kernel.spawn_process("/usr/bin/pwd")
    kernel.run_process(process)
    missed = kernel.uninterposed_syscalls(process.pid)
    assert missed
    for record in missed:
        region = process.address_space.region_at(record.site)
        assert region is not None and region.name == "[ld.so]", record


def test_lazypoline_misses_are_exactly_premain(kernel):
    install_coreutils(kernel, names=["/usr/bin/pwd"])
    LazypolineInterposer(kernel).install()
    process = kernel.spawn_process("/usr/bin/pwd")
    kernel.run_process(process)
    missed = kernel.uninterposed_syscalls(process.pid)
    assert missed
    for record in missed:
        region = process.address_space.region_at(record.site)
        assert region is not None and region.name == "[ld.so]", record


def test_ground_truth_counts_agree_across_mechanisms():
    """The same deterministic program requests the same *main-phase*
    syscalls whoever is watching (pre-main counts differ because injecting
    libK23 adds loader work for one more library)."""
    native_kernel = Kernel(seed=41)
    install_coreutils(native_kernel, names=["/usr/bin/cat"])
    native = native_kernel.spawn_process("/usr/bin/cat")
    native_kernel.run_process(native)
    native_main = (len(native_kernel.app_requested_syscalls(native.pid))
                   - native.premain_syscalls)

    kernel, k23, process = run_k23("/usr/bin/cat", seed=42)
    k23_main = (len(kernel.app_requested_syscalls(process.pid))
                - process.premain_syscalls)
    assert k23_main == native_main
