"""Block cache on vs off: the evaluation numbers must be byte-identical.

The basic-block translation cache is a pure interpreter optimization —
every cycle count the evaluation pipeline emits must be *exactly* the same
with the cache enabled and with ``REPRO_NO_BLOCK_CACHE=1``.  The flag is
read at :class:`Kernel` construction time, so each half of a comparison
just builds its kernels under the matching environment."""

import os

import pytest

from repro.evaluation.runner import measure_micro_cycles
from repro.kernel.kernel import Kernel
from repro.workloads.stress import STRESS_PATH, install_stress

#: Smoke-sized iteration counts (matching the pipeline's --smoke mode):
#: big enough to exercise replay-heavy steady state, small enough for CI.
LOW, HIGH = 60, 240


def _with_flag(value, fn):
    saved = os.environ.get("REPRO_NO_BLOCK_CACHE")
    try:
        if value is None:
            os.environ.pop("REPRO_NO_BLOCK_CACHE", None)
        else:
            os.environ["REPRO_NO_BLOCK_CACHE"] = value
        return fn()
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_BLOCK_CACHE", None)
        else:
            os.environ["REPRO_NO_BLOCK_CACHE"] = saved


def test_flag_controls_block_cache():
    assert _with_flag(None, lambda: Kernel(seed=1).block_cache_enabled)
    assert not _with_flag("1", lambda: Kernel(seed=1).block_cache_enabled)
    assert _with_flag("0", lambda: Kernel(seed=1).block_cache_enabled)


@pytest.mark.parametrize("mechanism", [
    "native", "zpoline-default", "lazypoline", "K23-ultra", "SUD",
])
def test_micro_cycles_identical_block_on_off(mechanism):
    on = _with_flag(None, lambda: measure_micro_cycles(mechanism, LOW, HIGH))
    off = _with_flag("1", lambda: measure_micro_cycles(mechanism, LOW, HIGH))
    assert on == off, (
        f"{mechanism}: block cache changed the measurement "
        f"({on!r} on vs {off!r} off)")


def test_stress_run_identical_block_on_off():
    """Full scheduler-level parity: retired count AND final cycle total of a
    multi-quantum syscall-stress run match exactly, mode on vs off."""

    def run():
        kernel = Kernel(seed=42)
        install_stress(kernel, iterations=200)
        process = kernel.spawn_process(STRESS_PATH)
        retired = kernel.run_process(process, max_steps=500_000)
        return retired, kernel.cycles.cycles

    assert _with_flag(None, run) == _with_flag("1", run)
