"""Advanced end-to-end scenarios: multi-input offline coverage, hook
expressiveness, dlmopen namespaces, and exec chains under K23."""

import pytest

from repro.arch.registers import Reg
from repro.core import K23Interposer, OfflinePhase
from repro.core.offline import import_logs
from repro.kernel import Kernel
from repro.kernel.syscalls import Nr
from repro.loader.image import SimImage
from repro.workloads.programs import ProgramBuilder, data_ref
from tests.simutil import make_hello, spawn_and_run


class TestMultiInputOfflineCoverage:
    """§5.1: 'To improve coverage, we can repeat the process with different
    inputs, generating additional logs.'"""

    @staticmethod
    def _register(kernel):
        builder = ProgramBuilder("/usr/bin/branchy")
        builder.string("mode", "/etc/mode-b")
        builder.start()
        builder.libc("access", data_ref("mode"), 0)
        builder.asm.test_rr(Reg.RAX, Reg.RAX)
        builder.asm.jne(".mode_a")
        builder.libc("getuid")   # mode B path
        builder.exit(0)
        builder.label(".mode_a")
        builder.libc("getpid")   # mode A path
        builder.exit(0)
        builder.register(kernel)

    def test_second_input_extends_the_log(self):
        kernel = Kernel(seed=37)
        self._register(kernel)
        offline = OfflinePhase(kernel)
        _proc, log_a = offline.run("/usr/bin/branchy")
        count_a = len(log_a)
        kernel.vfs.create("/etc/mode-b", b"")  # the second input
        _proc, log_ab = offline.run("/usr/bin/branchy")
        assert len(log_ab) > count_a  # getuid's site appeared
        from repro.loader.libc import LIBC_PATH

        offsets = {off for region, off in log_ab if region == LIBC_PATH}
        libc = kernel.loader.ensure_libc()
        assert libc.syscall_sites["getpid.syscall"] in offsets
        assert libc.syscall_sites["getuid.syscall"] in offsets

    def test_merged_log_covers_both_paths_online(self):
        offline_kernel = Kernel(seed=38)
        self._register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run("/usr/bin/branchy")
        offline_kernel.vfs.create("/etc/mode-b", b"")
        offline.run("/usr/bin/branchy")

        online = Kernel(seed=39)
        self._register(online)
        online.vfs.create("/etc/mode-b", b"")
        import_logs(online, offline.export())
        k23 = K23Interposer(online).install()
        process = spawn_and_run(online, "/usr/bin/branchy")
        vias = dict((nr, via) for nr, via in k23.handled[process.pid])
        assert vias.get(Nr.getuid) == "rewrite"  # fast path, both inputs


class TestHookExpressiveness:
    """§1/§8: in-process interposers retain full expressiveness — deep
    inspection of pointer arguments — unlike e.g. seccomp filters."""

    def test_hook_can_dereference_pointer_arguments(self):
        captured = []

        def deep_hook(thread, nr, args, forward):
            if nr == Nr.write and args[0] == 1:
                payload = thread.process.address_space.read_kernel(
                    args[1], args[2])
                captured.append(bytes(payload))
            return forward()

        offline_kernel = Kernel(seed=44)
        make_hello().register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run("/usr/bin/hello")
        kernel = Kernel(seed=45)
        make_hello().register(kernel)
        import_logs(kernel, offline.export())
        K23Interposer(kernel, hook=deep_hook).install()
        process = spawn_and_run(kernel, "/usr/bin/hello")
        assert captured == [b"hello\n"]
        assert process.exit_status == 0

    def test_hook_can_rewrite_buffer_before_forwarding(self):
        def redact_hook(thread, nr, args, forward):
            if nr == Nr.write and args[0] == 1:
                thread.process.address_space.write_kernel(
                    args[1], b"x" * min(args[2], 5))
            return forward()

        offline_kernel = Kernel(seed=46)
        make_hello().register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run("/usr/bin/hello")
        kernel = Kernel(seed=47)
        make_hello().register(kernel)
        import_logs(kernel, offline.export())
        K23Interposer(kernel, hook=redact_hook).install()
        process = spawn_and_run(kernel, "/usr/bin/hello")
        assert bytes(process.output) == b"xxxxx\n"


class TestDlmopenNamespaces:
    """§5.3: dlmopen loads libraries into isolated namespaces — prior
    interposers use it to avoid recursive interposition of their own
    library dependencies; rewriters must not touch foreign namespaces."""

    @staticmethod
    def _register_payload(kernel):
        payload = SimImage(name="/opt/ns_payload.so", entry="")
        payload.asm.label("payload_fn")
        payload.asm.endbr64()
        payload.asm.mov_ri(Reg.RAX, int(Nr.gettid))
        payload.asm.mark("payload_site")
        payload.asm.syscall_()
        payload.asm.ret()
        payload.finalize()
        kernel.loader.register_image(payload)

    def test_dlmopen_loads_into_distinct_namespace(self, kernel):
        self._register_payload(kernel)
        builder = ProgramBuilder("/bin/nsdemo")
        builder.string("lib", "/opt/ns_payload.so")
        builder.start()
        builder.libc("dlmopen", 1, data_ref("lib"))
        builder.exit(0)
        builder.register(kernel)
        process = spawn_and_run(kernel, "/bin/nsdemo")
        assert process.exit_status == 0
        key = "/opt/ns_payload.so#ns1"
        assert key in process.loaded_images
        _base, _image, namespace = process.loaded_images[key]
        assert namespace == 1

    def test_zpoline_skips_foreign_namespaces(self, kernel):
        """Code dlmopen'd into another namespace must not be rewritten by
        a later zpoline-style pass (the interposer's own isolated copies
        would otherwise recurse)."""
        from repro.interposers.zpoline import ZpolineInterposer

        self._register_payload(kernel)
        builder = ProgramBuilder("/bin/nsdemo2")
        builder.string("lib", "/opt/ns_payload.so")
        builder.start()
        builder.libc("dlmopen", 1, data_ref("lib"))
        builder.libc("getpid")
        builder.exit(0)
        builder.register(kernel)
        ZpolineInterposer(kernel).install()
        process = spawn_and_run(kernel, "/bin/nsdemo2")
        key = "/opt/ns_payload.so#ns1"
        base, image, _ns = process.loaded_images[key]
        site = base + image.syscall_sites["payload_site"]
        # dlmopen happened after zpoline's load-time pass anyway, and the
        # site must hold its original bytes.
        assert process.address_space.read_kernel(site, 2) == b"\x0f\x05"


class TestExecChains:
    def test_k23_survives_exec_chain(self):
        """A → exec B → exec C, each with scrubbed env: every stage stays
        fully interposed (the §5.3 restart loop)."""

        def register_all(kernel):
            make_hello(path="/usr/bin/final").register(kernel)

            def execer(path, target):
                builder = ProgramBuilder(path)
                builder.string("target", target)
                builder.words("argv", [0, 0])
                builder.words("envp", [0])
                builder.start()
                asm = builder.asm
                asm.lea_rip_label(Reg.RBX, "argv")
                asm.lea_rip_label(Reg.RAX, "target")
                asm.store(Reg.RBX, Reg.RAX)
                builder.libc("execve", data_ref("target"),
                             data_ref("argv"), data_ref("envp"))
                builder.exit(99)
                return builder

            execer("/bin/stage_b", "/usr/bin/final").register(kernel)
            execer("/bin/stage_a", "/bin/stage_b").register(kernel)

        offline_kernel = Kernel(seed=48)
        register_all(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        for path in ("/bin/stage_a", "/bin/stage_b", "/usr/bin/final"):
            offline.run(path)

        kernel = Kernel(seed=49)
        register_all(kernel)
        import_logs(kernel, offline.export())
        k23 = K23Interposer(kernel).install()
        process = spawn_and_run(kernel, "/bin/stage_a")
        assert process.path == "/usr/bin/final"
        assert process.exit_status == 0
        assert bytes(process.output) == b"hello\n"
        assert kernel.uninterposed_syscalls(process.pid) == []
        fixes = [d for s, d in k23.timeline
                 if s == "ptracer:execve-preload-fix"]
        assert len(fixes) == 2  # both scrubbed execs repaired