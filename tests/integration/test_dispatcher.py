"""The ``python -m repro`` unified dispatcher."""

import json

import pytest

from repro import __main__ as dispatcher


class TestDispatch:
    def test_no_args_prints_usage_and_fails(self, capsys):
        assert dispatcher.main([]) == 2
        assert "subcommands:" in capsys.readouterr().out

    def test_help_prints_usage_and_succeeds(self, capsys):
        assert dispatcher.main(["--help"]) == 0
        out = capsys.readouterr().out
        for name in ("simtrace", "evalrun", "conformance", "pitfallcheck"):
            assert name in out

    def test_unknown_subcommand(self, capsys):
        assert dispatcher.main(["frobnicate"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_unsupported_shared_flag_rejected_up_front(self, capsys):
        assert dispatcher.main(["simtrace", "cat", "--jobs", "4"]) == 2
        assert "does not support --jobs" in capsys.readouterr().err
        assert dispatcher.main(["pitfallcheck", "--trace-out=x.json"]) == 2
        assert "--trace-out" in capsys.readouterr().err

    def test_flag_error_names_the_supporting_subcommands(self, capsys):
        """The mismatch error tells the user where the flag *does* work."""
        assert dispatcher.main(["simtrace", "cat", "--jobs", "4"]) == 2
        err = capsys.readouterr().err
        assert "supported by:" in err
        assert "evalrun" in err and "conformance" in err
        assert dispatcher.main(["tracediff", "a", "b", "--seed", "1"]) == 2
        err = capsys.readouterr().err
        for name in ("simtrace", "evalrun", "conformance", "pitfallcheck",
                     "shadow"):
            assert name in err

    def test_supporters_table_is_consistent(self):
        """Every SHARED_FLAGS entry appears in at least one subcommand's
        support tuple, and every supported tuple only lists shared flags."""
        for flag in dispatcher.SHARED_FLAGS:
            assert dispatcher.supporters_of(flag)
        for name, (_module, shared) in dispatcher.SUBCOMMANDS.items():
            for flag in shared:
                assert flag in dispatcher.SHARED_FLAGS, (name, flag)

    def test_seed_registered_for_every_seeded_subcommand(self):
        supporters = dispatcher.supporters_of("--seed")
        for name in ("simtrace", "evalrun", "conformance", "pitfallcheck",
                     "shadow"):
            assert name in supporters

    def test_simtrace_roundtrip_with_trace_out(self, capsys, tmp_path):
        out = tmp_path / "cat.json"
        assert dispatcher.main(["simtrace", "cat", "--summary", "--seed",
                                "3", "--trace-out", str(out)]) == 0
        assert "exit status: 0" in capsys.readouterr().out
        from repro.observability.export import validate_chrome_trace

        assert validate_chrome_trace(json.loads(out.read_text())) == []

    def test_pitfallcheck_forwards(self, capsys):
        assert dispatcher.main(["pitfallcheck", "zpoline", "--pitfall",
                                "P3a"]) == 0
        assert "P3a" in capsys.readouterr().out

    def test_old_module_paths_still_work(self):
        """The dispatcher is additive: the per-tool mains keep working."""
        from repro.tools import (conformance, evalrun, pitfallcheck, shadow,
                                 simtrace)

        for module in (simtrace, evalrun, conformance, pitfallcheck, shadow):
            assert callable(module.main)

    def test_shadow_subcommand_forwards(self, capsys):
        rc = dispatcher.main(["shadow", "--primary", "lazypoline",
                              "--shadow", "zpoline-default",
                              "--workload", "stress", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict: PROMOTE" in out
        assert "divergences=0" in out

    def test_pitfallcheck_seed_flag_forwards(self, capsys):
        assert dispatcher.main(["pitfallcheck", "zpoline", "--pitfall",
                                "P3a", "--seed", "23"]) == 0
        assert "P3a" in capsys.readouterr().out

    def test_conformance_smoke_flag_wired(self, capsys, tmp_path):
        out = tmp_path / "m.json"
        rc = dispatcher.main(["conformance", "--smoke", "--jobs", "2",
                              "--mechanisms", "native", "SUD",
                              "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["workloads"] == ["stress", "cat"]
        assert doc["seeds"] == [1, 2]
        assert all(cell["counters"]["total_cycles"] > 0
                   for cell in doc["cells"])
