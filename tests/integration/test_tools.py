"""CLI tool tests: simtrace and pitfallcheck."""

import pytest

from repro.tools import pitfallcheck, simtrace


class TestSimtrace:
    def test_traces_coreutil_under_k23(self, capsys):
        assert simtrace.main(["cat", "--interposer", "K23-ultra"]) == 0
        out = capsys.readouterr().out
        assert "openat(" in out          # the trace
        assert "0 missed" in out         # exhaustive coverage
        assert "exit status: 0" in out

    def test_zpoline_reports_misses(self, capsys):
        assert simtrace.main(["pwd", "--interposer", "zpoline-default",
                              "--summary"]) == 0
        out = capsys.readouterr().out
        assert "missed" in out
        assert "openat(" not in out  # summary mode suppresses the trace

    def test_summary_histogram(self, capsys):
        simtrace.main(["clear", "--summary"])
        out = capsys.readouterr().out
        assert "total" in out and "ioctl" in out

    def test_unknown_program_rejected(self):
        with pytest.raises(SystemExit):
            simtrace.main(["frobnicate"])

    def test_native_mode(self, capsys):
        assert simtrace.main(["pwd", "--interposer", "native",
                              "--summary"]) == 0
        out = capsys.readouterr().out
        assert "0 interposed" in out


class TestPitfallcheck:
    def test_single_cell_matches(self, capsys):
        assert pitfallcheck.main(["zpoline", "--pitfall", "P3a"]) == 0
        out = capsys.readouterr().out
        assert "P3a" in out and "PITFALL" in out
        assert "match the paper" in out

    def test_k23_handles_p1b(self, capsys):
        assert pitfallcheck.main(["K23", "--pitfall", "P1b",
                                  "--evidence"]) == 0
        out = capsys.readouterr().out
        assert "handled" in out
        assert "abort" in out

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            pitfallcheck.main(["seccomp-only"])
