"""§6.1's observation: even simple utilities issue over 100 system calls
during startup, before any interposition library is loaded."""

import pytest

from repro.kernel import Kernel
from repro.workloads.coreutils import install_coreutils
from tests.simutil import spawn_and_run


def test_ls_issues_over_100_startup_syscalls(kernel):
    install_coreutils(kernel, names=["/usr/bin/ls"])
    process = spawn_and_run(kernel, "/usr/bin/ls")
    assert process.premain_syscalls > 100


def test_startup_syscalls_precede_library_constructors(kernel):
    """The loader stub's calls happen before any LD_PRELOAD constructor —
    the structural reason LD_PRELOAD-only interposers cannot see them."""
    order = []

    from repro.loader.image import SimImage

    lib = SimImage(name="/opt/probe.so", entry="")
    lib.constructors.append(
        lambda thread, base: order.append(len(kernel_ref[0].syscall_log)))
    lib.finalize()
    kernel_ref = [kernel]
    kernel.loader.register_image(lib)
    install_coreutils(kernel, names=["/usr/bin/ls"])
    process = spawn_and_run(kernel, "/usr/bin/ls",
                            env={"LD_PRELOAD": "/opt/probe.so"})
    assert order, "constructor must have run"
    syscalls_before_ctor = order[0]
    assert syscalls_before_ctor > 100


def test_all_coreutils_have_startup_storms(kernel):
    paths = install_coreutils(kernel)
    for path in paths:
        process = spawn_and_run(kernel, path)
        assert process.premain_syscalls > 40, path
