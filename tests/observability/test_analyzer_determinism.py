"""Replay determinism: forensics graded from a recorded event stream are
byte-identical to forensics graded live.

The same seeded pitfall run is observed two ways — an AnalyzerSuite
attached to the bus during execution, and a RingBufferSink flight
recorder whose captured events are replayed through a *fresh* suite
afterwards.  The JSON-serialized verdicts and latency snapshots must
match byte for byte, in both interpreter modes.  This is what makes the
analyzers *stream* analyzers: nothing they conclude depends on ambient
kernel state, only on the events.
"""

import json

import pytest

from repro.observability.analyzers import default_suite
from repro.observability.sinks import RingBufferSink
from repro.pitfalls.poc import (K23_KIT, LAZYPOLINE_KIT, PITFALL_SETUPS,
                                ZPOLINE_KIT, evaluate_pitfall)

PITFALLS = tuple(PITFALL_SETUPS)  # every streamed pitfall (P4b excluded)
KITS = {"zpoline": ZPOLINE_KIT, "lazypoline": LAZYPOLINE_KIT, "K23": K23_KIT}


def _seeded_run(pitfall, kit, block_cache):
    """One PoC run with both observers attached; returns
    (live suite, recorded events)."""
    setup = PITFALL_SETUPS[pitfall]
    kernel, _interposer = kit.build(setup.register,
                                    offline_paths=setup.offline_paths)
    kernel.block_cache_enabled = block_cache
    live = default_suite()
    recorder = RingBufferSink(capacity=400_000, keep_charges=True)
    kernel.bus.attach(live)
    kernel.bus.attach(recorder)
    if setup.pre_run is not None:
        setup.pre_run(kernel)
    process = kernel.spawn_process(setup.path)
    kernel.run_process(process, max_steps=3_000_000)
    assert recorder.dropped == 0, "flight recorder overflowed"
    return live, recorder.events()


def _canonical(suite):
    return json.dumps(suite.report(), sort_keys=True)


@pytest.mark.parametrize("block_cache", (True, False),
                         ids=("block-cache", "single-step"))
@pytest.mark.parametrize("kit", sorted(KITS))
def test_replay_matches_live(kit, block_cache):
    live, events = _seeded_run("P5", KITS[kit], block_cache)
    replayed = default_suite()
    replayed.replay(events)
    assert _canonical(replayed) == _canonical(live)


@pytest.mark.parametrize("pitfall", PITFALLS)
def test_replay_matches_live_every_pitfall(pitfall):
    """Every analyzer's verdict is a pure function of the stream — the
    recorded charges (kept by the flight recorder) are routed to
    ``observe_charge`` and change nothing."""
    live, events = _seeded_run(pitfall, ZPOLINE_KIT, True)
    replayed = default_suite()
    replayed.replay(events)
    assert _canonical(replayed) == _canonical(live)


@pytest.mark.parametrize("mode", ("block-cache", "single-step"))
def test_evaluator_verdicts_stable_across_modes(mode, monkeypatch):
    """The public evaluator's streamed verdicts agree with its handled
    bit in both interpreter modes (the analyzer is the single source of
    truth for the Table 3 cell)."""
    if mode == "single-step":
        monkeypatch.setenv("REPRO_NO_BLOCK_CACHE", "1")
    else:
        monkeypatch.delenv("REPRO_NO_BLOCK_CACHE", raising=False)
    for pitfall in PITFALLS:
        outcome = evaluate_pitfall(pitfall, LAZYPOLINE_KIT)
        assert outcome.verdict is not None
        assert outcome.handled == (not outcome.verdict.detected)
        assert outcome.evidence == outcome.verdict.reason
        assert outcome.verdict.pitfall == pitfall
