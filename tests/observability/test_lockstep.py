"""The lockstep property: tracing and forensics are observe-only.

Running any workload with the bus fully instrumented (TraceSink +
CounterSink + RingBufferSink + the full pitfall/latency AnalyzerSuite)
must not change a single application-observable fact vs the same run
with the bus disabled: retired instruction count, exit status, output
bytes, final cycle counter, or a conformance cell's verdict — in both
interpreter modes (block cache on/off).  Diagnosis can never mask the
bug it diagnoses.
"""

import pytest

from repro.kernel import Kernel
from repro.observability.analyzers import default_suite
from repro.observability.export import TraceSink
from repro.observability.sinks import CounterSink, RingBufferSink
from repro.workloads.stress import STRESS_PATH, build_stress

MECHANISMS = ("native", "SUD", "zpoline-default", "lazypoline")


def _run(mechanism: str, block_cache: bool, traced: bool):
    from repro.interposers.registry import REGISTRY

    kernel = Kernel(seed=777, aslr=False)
    kernel.block_cache_enabled = block_cache
    kernel.torn_window_probability = 0.0
    sinks = None
    if traced:
        sinks = (TraceSink(mechanism=mechanism, workload="stress"),
                 CounterSink(), RingBufferSink(capacity=2048),
                 default_suite())
        for sink in sinks:
            kernel.bus.attach(sink)
    build_stress(40).register(kernel)
    REGISTRY.create(mechanism, kernel)
    process = kernel.spawn_process(STRESS_PATH)
    retired = kernel.run_process(process, max_steps=5_000_000)
    assert process.exited
    return {
        "retired": retired,
        "exit_status": process.exit_status,
        "output": bytes(process.output),
        "cycles": kernel.cycles.cycles,
        "syscalls": len(kernel.syscall_log),
    }


@pytest.mark.parametrize("block_cache", (True, False),
                         ids=("block-cache", "single-step"))
@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_tracing_changes_nothing(mechanism, block_cache):
    plain = _run(mechanism, block_cache, traced=False)
    traced = _run(mechanism, block_cache, traced=True)
    assert traced == plain


@pytest.mark.parametrize("block_cache", (True, False),
                         ids=("block-cache", "single-step"))
def test_conformance_verdict_identical_with_tracing(block_cache):
    """A conformance cell's full Observation — the thing verdicts are made
    of — is identical with a TraceSink riding along."""
    from repro.faultinject.conformance import run_cell

    plain = run_cell("SUD", "stress", 1, block_cache=block_cache)
    sink = TraceSink(mechanism="SUD", workload="stress")
    traced = run_cell("SUD", "stress", 1, block_cache=block_cache,
                      trace_sink=sink)
    assert traced == plain
    assert sink.trace_events  # the sink really did observe the run
