"""Analyzer substrate unit tests: log-histogram bucket math, latency
pairing, pitfall-analyzer pid tracking, suite reports — plus the
CounterSink (phase, nr) keying regression pin."""

import json

import pytest

from repro.observability.analyzers import (
    ANALYZER_SCHEMA_VERSION,
    AnalyzerSuite,
    LatencyAnalyzer,
    LogHistogram,
    P1aBootstrapAnalyzer,
    PitfallVerdict,
    analyzer_for,
    default_suite,
    event_to_dict,
)
from repro.observability.analyzers.latency import (SUB_BUCKET_BITS,
                                                   bucket_bounds,
                                                   bucket_index,
                                                   percentile_of_doc,
                                                   percentile_rank)
from repro.observability.events import (ProcessLifecycle, SyscallEnter,
                                        SyscallExit)
from repro.observability.sinks import CounterSink


class TestBucketMath:
    def test_small_values_are_exact(self):
        for v in range(1 << SUB_BUCKET_BITS):
            assert bucket_index(v) == v
            assert bucket_bounds(v) == (v, v)

    def test_every_value_lands_inside_its_bucket(self):
        for v in [8, 9, 15, 16, 17, 100, 255, 256, 1000, 4805, 10**9]:
            low, high = bucket_bounds(bucket_index(v))
            assert low <= v <= high, (v, low, high)

    def test_bucket_width_is_relative(self):
        # Sub-bucketed octaves: width/low <= 1/2**(bits) for values past
        # the exact range (the HDR precision guarantee).
        for v in [64, 1000, 123456]:
            low, high = bucket_bounds(bucket_index(v))
            assert (high - low + 1) <= max(1, low >> (SUB_BUCKET_BITS - 1))

    def test_indices_are_monotone(self):
        indices = [bucket_index(v) for v in range(1, 5000)]
        assert indices == sorted(indices)


class TestLogHistogram:
    def test_percentiles_and_summary(self):
        hist = LogHistogram()
        for v in [10] * 90 + [1000] * 9 + [100000]:
            hist.record(v)
        d = hist.to_dict()
        assert d["count"] == 100
        assert d["min"] == 10 and d["max"] == 100000
        assert d["p50"] == bucket_bounds(bucket_index(10))[1]
        assert bucket_bounds(bucket_index(1000))[0] <= d["p99"] <= 100000
        assert d["p99"] >= 1000

    def test_percentile_clamped_to_observed_max(self):
        hist = LogHistogram()
        hist.record(1000)
        assert hist.percentile(99) == 1000

    def test_merge(self):
        a, b = LogHistogram(), LogHistogram()
        a.record(5)
        b.record(500)
        a.merge(b)
        assert a.count == 2 and a.min == 5 and a.max == 500
        assert a.total == 505

    def test_empty(self):
        d = LogHistogram().to_dict()
        assert d["count"] == 0 and d["p99"] == 0 and d["buckets"] == {}


class TestPercentileRank:
    """Pin the interpolation fix: ranks are exact ceilings in tenths of a
    percent, immune to banker's rounding at .5-tenth boundaries."""

    def test_half_tenth_boundary_is_not_bankers_rounded(self):
        # count=400, p=99.25: the rank is ceil(400 * 992.5 / 1000) = 397?
        # No — 400 * 99.25 / 100 = 397 exactly, so rank 397... the old
        # code computed int(round(99.25 * 10)) == 992 (banker's rounding
        # of 992.5 ties to even), i.e. ceil(400 * 992 / 1000) = 397
        # where the true tenth count 993 gives ceil(397.2) = 398.
        assert percentile_rank(400, 99.25) == 398

    def test_agrees_with_exact_ceiling(self):
        # For any p expressible in tenths, the rank must be
        # ceil(count * p / 100), clamped to at least 1.
        for count in (1, 7, 100, 400, 999, 10_000):
            for p in (0.1, 50.0, 90.0, 95.0, 99.0, 99.25, 99.9, 100.0):
                tenths = int(p * 10 + 0.5)
                expected = max(1, -(-count * tenths // 1000))
                assert percentile_rank(count, p) == expected, (count, p)

    def test_rank_is_monotone_in_p(self):
        for count in (3, 64, 1000):
            ranks = [percentile_rank(count, p / 10)
                     for p in range(1, 1001)]
            assert ranks == sorted(ranks)
            assert ranks[-1] == count

    def test_standard_percentiles_unchanged(self):
        # The report's published fields (p50/p90/p95/p99/p99.9) sit on
        # exact tenths — the boundary fix must not move them.
        hist = LogHistogram()
        for v in range(1, 1001):
            hist.record(v)
        for p, rank in ((50, 500), (90, 900), (95, 950), (99, 990),
                        (99.9, 999)):
            assert percentile_rank(1000, p) == rank
            low, high = bucket_bounds(bucket_index(rank))
            assert low <= hist.percentile(p) <= high

    def test_percentile_of_doc_matches_live_histogram(self):
        hist = LogHistogram()
        for v in [10] * 90 + [1000] * 9 + [100000]:
            hist.record(v)
        doc = hist.to_dict()
        for p in (50, 90, 95, 99, 99.25, 99.9):
            assert percentile_of_doc(doc, p) == hist.percentile(p), p

    def test_percentile_of_doc_empty(self):
        assert percentile_of_doc(LogHistogram().to_dict(), 99) == 0


def _enter(ts, nr=1, phase="app", pid=1, tid=0):
    return SyscallEnter(ts=ts, pid=pid, tid=tid, nr=nr, site=0, phase=phase)


def _exit(ts, nr=1, phase="app", pid=1, tid=0):
    return SyscallExit(ts=ts, pid=pid, tid=tid, nr=nr, phase=phase,
                       result=0)


class TestLatencyAnalyzer:
    def test_pairs_enter_exit_per_thread(self):
        analyzer = LatencyAnalyzer()
        analyzer.accept(_enter(100))
        analyzer.accept(_enter(110, pid=2))
        analyzer.accept(_exit(150))
        analyzer.accept(_exit(200, pid=2))
        assert analyzer.histograms[("app", 1)].count == 2
        assert analyzer.histograms[("app", 1)].min == 50
        assert analyzer.histograms[("app", 1)].max == 90

    def test_nested_spans_pop_inner_first(self):
        analyzer = LatencyAnalyzer()
        analyzer.accept(_enter(100, nr=1, phase="sud"))          # outer trap
        analyzer.accept(_enter(120, nr=1, phase="sud-handler"))  # forward
        analyzer.accept(_exit(130, nr=1, phase="sud-handler"))
        analyzer.accept(_exit(160, nr=1, phase="sud"))
        assert analyzer.histograms[("sud-handler", 1)].min == 10
        assert analyzer.histograms[("sud", 1)].min == 60

    def test_unmatched_exit_counted_not_recorded(self):
        analyzer = LatencyAnalyzer()
        analyzer.accept(_exit(50))
        assert analyzer.unmatched_exits == 1
        assert not analyzer.histograms

    def test_snapshot_is_json_ready_and_named(self):
        analyzer = LatencyAnalyzer()
        analyzer.accept(_enter(0, nr=39))
        analyzer.accept(_exit(7, nr=39))
        snap = analyzer.snapshot()
        json.dumps(snap)  # must serialize
        assert "app:getpid" in snap["per_syscall"]
        assert snap["per_phase"]["app"]["count"] == 1


class TestPitfallAnalyzerTracking:
    def test_follows_target_across_exec(self):
        analyzer = P1aBootstrapAnalyzer(target_path="/usr/bin/p1a_target")
        analyzer.accept(ProcessLifecycle(ts=0, pid=100, tid=0, kind="spawn",
                                         path="/bin/p1a"))
        analyzer.accept(ProcessLifecycle(ts=1, pid=101, tid=0, kind="spawn",
                                         path="/bin/p1a"))
        # Child execs into the target image: pid 101 becomes the target.
        analyzer.accept(ProcessLifecycle(ts=2, pid=101, tid=0, kind="exec",
                                         path="/usr/bin/p1a_target"))
        analyzer.accept(_enter(3, nr=1, pid=101))   # uninterposed write
        analyzer.accept(_enter(4, nr=1, pid=100))   # parent: not the target
        [verdict] = analyzer.finish()
        assert verdict.detected and verdict.pid == 101
        assert "missed nrs [1]" in verdict.reason
        assert verdict.evidence[0].pid == 101

    def test_no_target_means_never_executed(self):
        analyzer = P1aBootstrapAnalyzer()
        [verdict] = analyzer.finish()
        assert verdict.detected
        assert verdict.reason == "target never executed"

    def test_interposed_phases_are_not_misses(self):
        analyzer = analyzer_for("P1b")
        analyzer.accept(ProcessLifecycle(ts=0, pid=100, tid=0, kind="spawn",
                                         path="/bin/p1b"))
        analyzer.accept(_enter(1, nr=102, phase="sud", pid=100))
        analyzer.accept(ProcessLifecycle(ts=2, pid=100, tid=0, kind="exit",
                                         path="/bin/p1b", status=0))
        [verdict] = analyzer.finish()
        assert not verdict.detected
        assert verdict.reason == "post-disable syscall still interposed"


class TestSuite:
    def test_report_schema(self):
        suite = default_suite()
        suite.accept(_enter(0, nr=39))
        suite.accept(_exit(5, nr=39))
        report = suite.report()
        json.dumps(report)
        assert report["schema_version"] == ANALYZER_SCHEMA_VERSION
        pitfalls = {v["pitfall"] for v in report["verdicts"]}
        assert pitfalls == {"P1a", "P1b", "P2a", "P2b", "P3a", "P3b",
                            "P4a", "P5"}
        assert "latency" in report["telemetry"]

    def test_finish_is_idempotent(self):
        analyzer = analyzer_for("P5")
        assert len(analyzer.finish()) == 1
        assert len(analyzer.finish()) == 1

    def test_getitem(self):
        suite = default_suite()
        assert suite["latency"] is suite.analyzers[-1]
        with pytest.raises(KeyError):
            suite["nope"]


class TestVerdictSerialization:
    def test_to_dict_includes_typed_evidence(self):
        event = _enter(9, nr=39)
        verdict = PitfallVerdict(pitfall="P5", analyzer="t", detected=True,
                                 reason="r", pid=1, ts=9, evidence=(event,))
        d = verdict.to_dict()
        json.dumps(d)
        assert d["evidence"][0]["type"] == "SyscallEnter"
        assert d["evidence"][0]["nr"] == 39
        assert event_to_dict(event)["ts"] == 9


class TestCounterSinkPhaseKeying:
    """Regression pin: the per-syscall histogram keys on (phase, nr), so
    an interposer-internal forward of nr N never conflates with a raw
    app trap of the same nr (METRICS_table5.json relies on this)."""

    def test_same_nr_different_phase_separate_keys(self):
        sink = CounterSink()
        sink.accept(_enter(0, nr=39, phase="app"))
        sink.accept(_enter(1, nr=39, phase="interposer-internal"))
        sink.accept(_enter(2, nr=39, phase="interposer-internal"))
        assert sink.syscalls[("app", 39)] == 1
        assert sink.syscalls[("interposer-internal", 39)] == 2
        snap = sink.snapshot()["syscalls"]
        assert snap["app:39"] == 1
        assert snap["interposer-internal:39"] == 2
