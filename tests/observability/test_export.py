"""Perfetto/Chrome trace-event export: real traces validate against the
schema checker, and the checker actually rejects malformed documents."""

import json

import pytest

from repro.observability.export import (ATTRIBUTION_PID, TraceSink,
                                        validate_chrome_trace,
                                        write_chrome_trace)


@pytest.fixture(scope="module")
def cat_trace(tmp_path_factory):
    """The acceptance artifact: a traced `simtrace cat` run."""
    from repro.tools.simtrace import trace
    import io

    out = tmp_path_factory.mktemp("trace") / "cat_trace.json"
    process, _tracer, _counter, _missed = trace(
        "cat", mechanism="K23-ultra", seed=1, summary=True,
        out=io.StringIO(), trace_out=str(out))
    assert process.exit_status == 0
    return json.loads(out.read_text())


class TestExportedTrace:
    def test_validates_against_the_schema(self, cat_trace):
        assert validate_chrome_trace(cat_trace) == []

    def test_has_thread_tracks_and_metadata(self, cat_trace):
        events = cat_trace["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert "thread_name" in names and "process_name" in names
        assert cat_trace["otherData"]["mechanism"] == "K23-ultra"
        assert cat_trace["otherData"]["clock_hz"] == 3_200_000_000

    def test_syscall_spans_present_and_nested(self, cat_trace):
        events = cat_trace["traceEvents"]
        begins = [e for e in events if e["ph"] == "B"]
        assert begins, "no duration slices in the trace"
        # K23-ultra routes startup syscalls through the ptracer and
        # steady-state ones through the rewritten sites — both phases
        # must be visible as distinct span categories.
        cats = {e.get("cat") for e in begins}
        assert "ptrace" in cats and len(cats) >= 2

    def test_attribution_flamegraph(self, cat_trace):
        slices = [e for e in cat_trace["traceEvents"]
                  if e["pid"] == ATTRIBUTION_PID and e["ph"] == "X"]
        assert slices, "cycle-attribution track missing"
        # Laid end to end: sorted by ts, each slice starts where the
        # previous one ended (within float rounding).
        slices.sort(key=lambda e: e["ts"])
        cursor = 0.0
        for s in slices:
            assert abs(s["ts"] - cursor) < 0.01
            cursor += s["dur"]
        # Cycle sums in otherData match the slices.
        attribution = cat_trace["otherData"]["cycle_attribution"]
        assert {s["name"] for s in slices} == set(attribution)

    def test_counter_track_sampled(self, cat_trace):
        counters = [e for e in cat_trace["traceEvents"] if e["ph"] == "C"]
        assert counters
        values = [e["args"]["cycles"] for e in counters]
        assert values == sorted(values)  # cycles only move forward


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) == ["top level is not a JSON object"]

    def test_rejects_missing_events(self):
        assert validate_chrome_trace({}) == [
            "missing/invalid 'traceEvents' array"]

    def test_rejects_bad_phase_and_missing_keys(self):
        doc = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1, "tid": 1,
                                "ts": 0},
                               {"ph": "B"}]}
        problems = validate_chrome_trace(doc)
        assert any("unknown phase" in p for p in problems)
        assert any("missing" in p for p in problems)

    def test_rejects_unbalanced_spans(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("unclosed B" in p for p in problems)
        doc = {"traceEvents": [
            {"name": "a", "ph": "E", "pid": 1, "tid": 1, "ts": 0},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("E without matching B" in p for p in problems)

    def test_rejects_complete_without_dur_and_bad_instant(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0},
            {"name": "b", "ph": "i", "pid": 1, "tid": 1, "ts": 0},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("missing dur" in p for p in problems)
        assert any("instant missing scope" in p for p in problems)

    def test_rejects_stale_trace_schema_version(self):
        from repro.observability.export import TRACE_SCHEMA_VERSION

        doc = {"traceEvents": [],
               "otherData": {"trace_schema_version": TRACE_SCHEMA_VERSION - 1}}
        problems = validate_chrome_trace(doc)
        assert any("trace_schema_version" in p for p in problems)
        doc["otherData"]["trace_schema_version"] = TRACE_SCHEMA_VERSION
        assert not any("trace_schema_version" in p
                       for p in validate_chrome_trace(doc))


def test_truncated_spans_closed_on_finalize(tmp_path):
    from repro.observability.events import SyscallEnter

    sink = TraceSink(mechanism="native", workload="unit")
    sink.accept(SyscallEnter(ts=3200, pid=1, tid=0, nr=39, site=0,
                             phase="app"))
    path = write_chrome_trace(sink, tmp_path / "t.json")
    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) == []
    closing = [e for e in doc["traceEvents"] if e.get("cat") == "truncated"]
    assert len(closing) == 1
