"""Bus + sink unit tests: enable/disable fast path, counter fidelity, ring
buffer semantics, JSONL streaming, and the exporter's clock constant."""

import io
import json

from repro.cpu.cycles import CLOCK_HZ as MODEL_CLOCK_HZ
from repro.kernel import Kernel
from repro.observability.bus import Bus
from repro.observability.events import CycleCharge, QuantumEnd, SyscallEnter
from repro.observability.export import CLOCK_HZ as EXPORT_CLOCK_HZ
from repro.observability.sinks import (JSONL_SCHEMA_VERSION, CounterSink,
                                       NullSink, RingBufferSink,
                                       StreamingJSONLSink)
from repro.workloads.stress import STRESS_PATH, build_stress


def _stress_kernel(iterations=30):
    kernel = Kernel(seed=777, aslr=False)
    kernel.torn_window_probability = 0.0
    build_stress(iterations).register(kernel)
    return kernel


class TestBus:
    def test_disabled_until_a_sink_attaches(self):
        bus = Bus()
        assert not bus.enabled
        sink = NullSink()
        bus.attach(sink)
        assert bus.enabled
        bus.detach(sink)
        assert not bus.enabled

    def test_emit_reaches_every_sink(self):
        bus = Bus()
        a, b = CounterSink(), CounterSink()
        bus.attach(a)
        bus.attach(b)
        bus.emit(QuantumEnd(ts=1, pid=1, tid=0))
        assert a.events["QuantumEnd"] == 1
        assert b.events["QuantumEnd"] == 1

    def test_kernel_bus_is_wired_to_the_cycle_model(self):
        kernel = Kernel(seed=1)
        assert kernel.cycles.bus is kernel.bus


class TestCounterSink:
    def test_counters_mirror_the_cycle_model(self):
        kernel = _stress_kernel()
        sink = CounterSink()
        kernel.bus.attach(sink)
        process = kernel.spawn_process(STRESS_PATH)
        kernel.run_process(process, max_steps=2_000_000)
        assert process.exited and process.exit_status == 0
        model = kernel.cycles.snapshot()
        for event, count in model.items():
            assert sink.charge_counts[event.value] == count, event
        # Every accumulated cycle is attributed — modelled + raw.
        assert sink.total_cycles == kernel.cycles.cycles

    def test_snapshot_is_json_ready(self):
        kernel = _stress_kernel(10)
        sink = CounterSink()
        kernel.bus.attach(sink)
        process = kernel.spawn_process(STRESS_PATH)
        kernel.run_process(process, max_steps=2_000_000)
        snap = sink.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["total_cycles"] == sink.total_cycles
        assert any(key.startswith("app:") or ":" in key
                   for key in snap["syscalls"])


class TestRingBufferSink:
    def test_capacity_and_dropped_accounting(self):
        sink = RingBufferSink(capacity=4)
        for i in range(10):
            sink.accept(QuantumEnd(ts=i, pid=1, tid=0))
        assert len(sink.events()) == 4
        assert sink.dropped == 6
        assert sink.events()[-1].ts == 9

    def test_charges_excluded_by_default(self):
        sink = RingBufferSink(capacity=8)
        sink.accept(CycleCharge(ts=0, pid=0, tid=0, event="instruction",
                                times=1, cycles=1))
        sink.accept(SyscallEnter(ts=1, pid=1, tid=0, nr=39, site=0,
                                 phase="app"))
        kept = sink.events()
        assert len(kept) == 1 and isinstance(kept[0], SyscallEnter)


class TestStreamingJSONL:
    def test_lines_parse_and_charges_summarize(self):
        stream = io.StringIO()
        sink = StreamingJSONLSink(stream)
        sink.accept(SyscallEnter(ts=1, pid=1, tid=0, nr=39, site=0,
                                 phase="app"))
        sink.accept(CycleCharge(ts=2, pid=0, tid=0, event="instruction",
                                times=3, cycles=3))
        summary = sink.close()
        lines = [json.loads(line) for line in
                 stream.getvalue().splitlines()]
        assert lines[0]["type"] == "TraceMeta"
        assert lines[0]["schema_version"] == JSONL_SCHEMA_VERSION
        assert lines[1]["type"] == "SyscallEnter" and lines[1]["nr"] == 39
        assert lines[-1]["type"] == "ChargeSummary"
        assert [line["seq"] for line in lines] == list(range(len(lines)))
        assert summary == {"instruction": 3}


def test_export_clock_matches_the_cycle_model():
    """export.py keeps a local copy of CLOCK_HZ (it cannot import the cycle
    model — circular); this pins the two together."""
    assert EXPORT_CLOCK_HZ == MODEL_CLOCK_HZ
