"""tracediff / traceq over real v2 JSONL traces.

Same-seed runs must diff clean; different-seed runs must report a first
divergence (ASLR moves every site).  The query tool's filters and
aggregations are checked against the same traces.
"""

import io
import json

import pytest

from repro.kernel import Kernel
from repro.observability.sinks import StreamingJSONLSink
from repro.tools.tracediff import diff_traces
from repro.tools.traceio import by_track, split_header, track_of
from repro.tools.traceq import main as traceq_main
from repro.workloads.stress import STRESS_PATH, build_stress


def _trace(seed: int, mechanism: str = "SUD") -> list:
    from repro.interposers.registry import REGISTRY

    buffer = io.StringIO()
    kernel = Kernel(seed=seed)
    kernel.torn_window_probability = 0.0
    sink = StreamingJSONLSink(buffer)
    kernel.bus.attach(sink)
    build_stress(10).register(kernel)
    REGISTRY.create(mechanism, kernel)
    process = kernel.spawn_process(STRESS_PATH)
    kernel.run_process(process, max_steps=5_000_000)
    assert process.exited
    sink.close()
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


@pytest.fixture(scope="module")
def trace_a():
    return _trace(seed=41)


class TestDiff:
    def test_same_seed_identical(self, trace_a):
        assert diff_traces(trace_a, _trace(seed=41)) == []

    def test_different_seed_diverges(self, trace_a):
        divergences = diff_traces(trace_a, _trace(seed=42))
        assert divergences
        first = divergences[0]
        assert first["kind"] in ("record", "length")
        if first["kind"] == "record":
            assert first["fields"]  # names the differing fields

    def test_seq_excluded_unless_strict(self, trace_a):
        # Perturb only the seq numbering: invisible by default, a
        # divergence under --strict-seq.
        renumbered = [dict(r) for r in trace_a]
        for record in renumbered:
            record["seq"] = record["seq"] + 5
        assert diff_traces(trace_a, renumbered) == []
        strict = diff_traces(trace_a, renumbered, strict_seq=True)
        assert strict and "seq" in strict[0]["fields"]

    def test_truncated_trace_is_length_divergence(self, trace_a):
        divergences = diff_traces(trace_a, trace_a[:-4])
        assert any(d["kind"] == "length" for d in divergences)

    def test_v1_trace_without_header_still_aligns(self, trace_a):
        header, body = split_header(trace_a)
        assert header is not None
        v1 = [{k: v for k, v in r.items() if k != "seq"} for r in body]
        assert diff_traces(v1, list(v1)) == []


class TestTrackModel:
    def test_header_split(self, trace_a):
        header, body = split_header(trace_a)
        assert header["type"] == "TraceMeta"
        assert all(r["type"] != "TraceMeta" for r in body)

    def test_track_of_groups_by_thread(self, trace_a):
        _header, body = split_header(trace_a)
        tracks = by_track(body)
        assert tracks
        for track, records in tracks.items():
            assert all(track_of(r) == track for r in records)
            seqs = [r.get("seq", 0) for r in records]
            assert seqs == sorted(seqs)

    def test_global_track_for_bare_records(self):
        assert track_of({"type": "ChargeSummary"}) == ("global",)


class TestTraceq:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "a.jsonl"
        records = _trace(seed=41)
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return str(path)

    def test_count_by_type(self, trace_file, capsys):
        assert traceq_main([trace_file, "--type", "SyscallEnter",
                            "--count"]) == 0
        out = capsys.readouterr().out.strip()
        assert int(out) > 0

    def test_group_by_phase(self, trace_file, capsys):
        assert traceq_main([trace_file, "--type", "SyscallEnter",
                            "--group-by", "phase"]) == 0
        out = capsys.readouterr().out
        assert "match(es)" in out

    def test_nr_by_name_equals_nr_by_number(self, trace_file, capsys):
        from repro.kernel.syscalls import Nr

        traceq_main([trace_file, "--nr", "getpid", "--count"])
        by_name = capsys.readouterr().out.strip()
        traceq_main([trace_file, "--nr", str(int(Nr.getpid)), "--count"])
        by_number = capsys.readouterr().out.strip()
        assert by_name == by_number

    def test_filters_compose(self, trace_file, capsys):
        assert traceq_main([trace_file, "--type", "SyscallEnter",
                            "--phase", "app", "--limit", "3"]) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines()
                 if line.startswith("{")]
        assert len(lines) <= 3
        assert all(r["type"] == "SyscallEnter" and r["phase"] == "app"
                   for r in lines)

    def test_meta_records_never_match(self, trace_file, capsys):
        assert traceq_main([trace_file]) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines() if line.strip()]
        assert all(r["type"] not in ("TraceMeta", "ChargeSummary")
                   for r in lines)


class TestTraceqWhere:
    """`--where KEY=VALUE`: exact-match any record field."""

    @pytest.fixture(scope="class")
    def span_trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "spans.jsonl"
        records = [
            {"type": "RequestSpan", "request": "r-1", "server": 0,
             "tenant": "anchor", "shed": False, "latency_ns": 100},
            {"type": "RequestSpan", "request": "r-2", "server": 1,
             "tenant": "batch", "shed": True, "latency_ns": 900},
            {"type": "RequestSpan", "request": "r-3", "server": 1,
             "tenant": "batch", "shed": False, "latency_ns": 50},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return str(path)

    def test_where_matches_string_field(self, span_trace, capsys):
        assert traceq_main([span_trace, "--where", "request=r-2",
                            "--count"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_where_matches_int_and_bool(self, span_trace, capsys):
        assert traceq_main([span_trace, "--where", "server=1",
                            "--where", "shed=false", "--count"]) == 0
        assert capsys.readouterr().out.strip() == "1"
        assert traceq_main([span_trace, "--where", "shed=true"]) == 0
        records = [json.loads(line) for line in
                   capsys.readouterr().out.splitlines()]
        assert [r["request"] for r in records] == ["r-2"]

    def test_where_composes_with_other_filters(self, trace_a, tmp_path,
                                                capsys):
        path = tmp_path / "t.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in trace_a))
        traceq_main([str(path), "--phase", "app", "--count"])
        by_flag = capsys.readouterr().out.strip()
        traceq_main([str(path), "--where", "phase=app", "--count"])
        by_where = capsys.readouterr().out.strip()
        assert by_flag == by_where

    def test_where_missing_field_never_matches(self, span_trace, capsys):
        assert traceq_main([span_trace, "--where", "nonexistent=1",
                            "--count"]) == 0
        assert capsys.readouterr().out.strip() == "0"

    def test_where_rejects_malformed_pair(self, span_trace):
        with pytest.raises(SystemExit):
            traceq_main([span_trace, "--where", "no-equals-sign"])
