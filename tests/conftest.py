import pytest

from repro.kernel import Kernel


@pytest.fixture
def kernel():
    """A fresh simulated machine with a fixed seed."""
    return Kernel(seed=42)


@pytest.fixture
def kernel_noaslr():
    """A machine with ASLR disabled (stable absolute addresses)."""
    return Kernel(seed=42, aslr=False)
