"""Extension features: the seccomp offline backend (§5.1's alternative) and
conservative static log augmentation (§7 future work)."""

import pytest

from repro.core import K23Interposer, OfflinePhase
from repro.core.offline import import_logs
from repro.core.static_augment import (
    augment_log,
    clean_sweep_sites,
    offline_with_augmentation,
)
from repro.kernel import Kernel
from repro.kernel.seccomp import (
    Action,
    SeccompState,
    Verdict,
    deny_with_errno,
    trap_all_except,
)
from repro.kernel.syscalls import Errno, Nr
from repro.workloads.coreutils import install_coreutils
from repro.workloads.programs import ProgramBuilder, data_ref
from tests.simutil import spawn_and_run


class TestSeccompState:
    def test_inactive_by_default(self):
        assert not SeccompState().active

    def test_trap_all_except(self):
        program = trap_all_except([Nr.exit, Nr.exit_group])
        assert program(Nr.exit, []).action == Action.ALLOW
        assert program(Nr.write, []).action == Action.TRAP

    def test_deny_with_errno(self):
        program = deny_with_errno([Nr.socket], Errno.EPERM)
        verdict = program(Nr.socket, [])
        assert verdict.action == Action.ERRNO and verdict.errno == Errno.EPERM
        assert program(Nr.write, []).action == Action.ALLOW

    def test_most_restrictive_verdict_wins(self):
        state = SeccompState()
        state.install(deny_with_errno([Nr.write], Errno.EPERM))
        state.install(trap_all_except([Nr.write]))
        # write: ERRNO from filter 1; getpid: TRAP from filter 2 (wins).
        assert state.evaluate(Nr.write, []).action == Action.ERRNO
        assert state.evaluate(Nr.getpid, []).action == Action.TRAP

    def test_fork_inherits_filters(self, kernel):
        from repro.arch.registers import Reg

        builder = ProgramBuilder("/bin/scfork")
        builder.start()
        builder.libc("fork")
        builder.asm.test_rr(Reg.RAX, Reg.RAX)
        builder.asm.jne("parent")
        builder.libc("socket", 2, 1, 0)  # child: denied by inherited filter
        builder.libc("exit", Reg.RAX)
        builder.label("parent")
        builder.libc("wait4", 0, 0, 0, 0)
        builder.exit(0)
        builder.register(kernel)
        process = kernel.spawn_process("/bin/scfork")
        process.seccomp.install(deny_with_errno([Nr.socket], Errno.EPERM))
        kernel.run()
        child = next(p for p in kernel.processes.values()
                     if p.parent is process)
        assert child.exit_status == (-Errno.EPERM) & 0xFF


class TestSeccompErrnoPath:
    def test_denied_syscall_returns_errno(self, kernel):
        builder = ProgramBuilder("/bin/scdeny")
        builder.start()
        builder.libc("socket", 2, 1, 0)
        from repro.arch.registers import Reg

        builder.libc("exit", Reg.RAX)
        builder.register(kernel)
        process = kernel.spawn_process("/bin/scdeny")
        process.seccomp.install(deny_with_errno([Nr.socket], Errno.EPERM))
        kernel.run_process(process)
        assert process.exit_status == (-Errno.EPERM) & 0xFF


class TestSeccompOfflineBackend:
    def test_backend_validation(self, kernel):
        with pytest.raises(ValueError):
            OfflinePhase(kernel, backend="ebpf")

    def test_logs_identical_to_sud_backend(self):
        logs = {}
        for backend in ("sud", "seccomp"):
            kernel = Kernel(seed=17)
            install_coreutils(kernel, names=["/usr/bin/cat"])
            offline = OfflinePhase(kernel, backend=backend)
            _proc, log = offline.run("/usr/bin/cat")
            logs[backend] = sorted(log)
        assert logs["sud"] == logs["seccomp"]

    def test_seccomp_logged_program_runs_under_k23(self):
        offline_kernel = Kernel(seed=18)
        install_coreutils(offline_kernel, names=["/usr/bin/pwd"])
        offline = OfflinePhase(offline_kernel, backend="seccomp")
        offline.run("/usr/bin/pwd")

        kernel = Kernel(seed=19)
        install_coreutils(kernel, names=["/usr/bin/pwd"])
        import_logs(kernel, offline.export())
        k23 = K23Interposer(kernel).install()
        process = spawn_and_run(kernel, "/usr/bin/pwd")
        assert process.exit_status == 0
        assert kernel.uninterposed_syscalls(process.pid) == []
        assert len(k23.rewritten_sites(process)) == 7  # pwd's Table 2 count


class TestStaticAugmentation:
    def test_clean_sweep_sites(self):
        from repro.arch import Asm
        from repro.arch.registers import Reg

        asm = Asm()
        asm.mov_ri(Reg.RAX, 39)
        asm.mark("s")
        asm.syscall_()
        asm.ret()
        clean, sites = clean_sweep_sites(asm.assemble())
        assert clean and sites == [asm.marks["s"]]

    def test_dirty_sweep_rejected(self):
        from repro.arch import Asm
        from repro.arch.registers import Reg

        asm = Asm()
        asm.jmp("over")
        asm.raw(b"\x01\x02\x03")  # undecodable data → desync
        asm.label("over")
        asm.syscall_()
        asm.ret()
        clean, _sites = clean_sweep_sites(asm.assemble())
        assert not clean

    def _partial_coverage_setup(self, seed):
        """A program whose 'rare' branch (getuid) never runs offline."""
        def register(kernel):
            builder = ProgramBuilder("/usr/bin/rare")
            builder.string("flag", "/etc/rare-mode")
            builder.start()
            builder.libc("access", data_ref("flag"), 0)
            from repro.arch.registers import Reg

            builder.asm.test_rr(Reg.RAX, Reg.RAX)
            builder.asm.jne(".common")
            builder.libc("getuid")  # only with /etc/rare-mode present
            builder.label(".common")
            builder.libc("getpid")
            builder.exit(0)
            builder.register(kernel)

        kernel = Kernel(seed=seed)
        register(kernel)
        return kernel, register

    def test_augmentation_adds_unexercised_sites(self):
        kernel, _register = self._partial_coverage_setup(23)
        offline = OfflinePhase(kernel)
        process, log, added = offline_with_augmentation(offline,
                                                        "/usr/bin/rare")
        # The dynamic run never saw getuid's site; augmentation found it in
        # libc's cleanly-sweeping code pages.
        from repro.loader.libc import LIBC_PATH

        _base, libc, _ns = process.loaded_images[LIBC_PATH]
        assert (LIBC_PATH, libc.syscall_sites["getuid.syscall"]) in log
        assert added.get(LIBC_PATH, 0) > 0

    def test_augmented_log_accelerates_rare_path(self):
        """The rare branch takes the rewritten fast path online instead of
        the SUD fallback."""
        kernel, register = self._partial_coverage_setup(24)
        offline = OfflinePhase(kernel)
        offline_with_augmentation(offline, "/usr/bin/rare")

        online = Kernel(seed=25)
        register_fn = register
        register_fn(online)
        online.vfs.create("/etc/rare-mode", b"")  # rare branch active now
        import_logs(online, offline.export())
        k23 = K23Interposer(online).install()
        process = spawn_and_run(online, "/usr/bin/rare")
        assert process.exit_status == 0
        vias = dict((nr, via) for nr, via in k23.handled[process.pid])
        from repro.kernel.syscalls import Nr

        assert vias.get(Nr.getuid) == "rewrite"  # not "sud"

    def test_augmentation_never_adds_data_or_partial_sites(self):
        """A program with embedded data: its whole main-image run is
        rejected (desync), so no P3a hazard can enter the log."""
        kernel = Kernel(seed=26)
        builder = ProgramBuilder("/usr/bin/dataful")
        builder.start()
        asm = builder.asm
        asm.jmp("over")
        asm.raw(b"\x0f\x05\x01\x02")  # data resembling a syscall
        asm.label("over")
        builder.libc("getpid")
        builder.exit(0)
        builder.register(kernel)
        offline = OfflinePhase(kernel)
        process, log, added = offline_with_augmentation(offline,
                                                        "/usr/bin/dataful")
        datum_entries = [(region, off) for region, off in log
                         if region == "/usr/bin/dataful"]
        # The data bytes must not be logged (only libc sites were added).
        code_offsets = {off for _r, off in datum_entries}
        data_offset = builder.asm.data_spans[0][0]
        assert data_offset not in code_offsets
        assert any(key.startswith("!rejected:") for key in added)
