"""SiteLog format/persistence tests (Figure 3 machinery)."""

import pytest

from repro.core.logs import LOG_ROOT, SiteLog, seal_logs
from repro.errors import VFSError
from repro.kernel.vfs import VFS


def test_add_dedups():
    log = SiteLog("/usr/bin/ls")
    assert log.add("/usr/lib/x86_64-linux-gnu/libc.so.6", 1153562)
    assert not log.add("/usr/lib/x86_64-linux-gnu/libc.so.6", 1153562)
    assert len(log) == 1


def test_render_matches_figure3_format():
    log = SiteLog("/usr/bin/ls")
    log.add("/usr/lib/x86_64-linux-gnu/libc.so.6", 1153562)
    log.add("/usr/bin/ls", 943685)
    text = log.render()
    assert "/usr/lib/x86_64-linux-gnu/libc.so.6,1153562\n" in text
    assert "/usr/bin/ls,943685\n" in text


def test_parse_roundtrip():
    log = SiteLog("/usr/bin/ls")
    log.add("/usr/lib/x86_64-linux-gnu/libc.so.6", 42)
    log.add("/usr/bin/ls", 7)
    parsed = SiteLog.parse("/usr/bin/ls", log.render())
    assert list(parsed) == list(log)


def test_parse_skips_comments_and_blanks():
    parsed = SiteLog.parse("/p", "# header\n\n/lib/a.so,5\n")
    assert list(parsed) == [("/lib/a.so", 5)]


def test_parse_rejects_malformed():
    with pytest.raises(ValueError):
        SiteLog.parse("/p", "garbage-without-comma\n")


def test_merge_accumulates_coverage():
    run1 = SiteLog("/p")
    run1.add("/lib/a.so", 1)
    run2 = SiteLog("/p")
    run2.add("/lib/a.so", 1)
    run2.add("/lib/a.so", 2)
    run1.merge(run2)
    assert len(run1) == 2


def test_save_load_and_seal():
    vfs = VFS()
    log = SiteLog("/usr/bin/cat")
    log.add("/lib/a.so", 9)
    path = log.save(vfs)
    assert path == f"{LOG_ROOT}/cat.log"
    loaded = SiteLog.load(vfs, "/usr/bin/cat")
    assert list(loaded) == [("/lib/a.so", 9)]
    seal_logs(vfs)
    with pytest.raises(VFSError):
        vfs.append(path, b"tamper")
    with pytest.raises(VFSError):
        vfs.create(f"{LOG_ROOT}/evil.log", b"")


def test_exists():
    vfs = VFS()
    assert not SiteLog.exists(vfs, "/usr/bin/cat")
    SiteLog("/usr/bin/cat").save(vfs)
    assert SiteLog.exists(vfs, "/usr/bin/cat")
