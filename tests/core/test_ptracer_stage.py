"""K23 ptracer-stage unit tests: handoff protocol, verification, execve
enforcement (§5.2/§5.3)."""

import pytest

from repro.core import K23Interposer, OfflinePhase
from repro.core.offline import import_logs
from repro.core.ptracer_stage import K23Ptracer
from repro.kernel import Kernel
from repro.kernel.syscalls import (
    K23_FAKE_SYSCALL_DETACH,
    K23_FAKE_SYSCALL_STATE,
)
from repro.workloads.programs import ProgramBuilder, data_ref
from tests.simutil import make_hello, spawn_and_run


def k23_run(seed=50, builder_fn=make_hello, path="/usr/bin/hello"):
    offline_kernel = Kernel(seed=seed)
    builder_fn().register(offline_kernel)
    offline = OfflinePhase(offline_kernel)
    offline.run(path)
    kernel = Kernel(seed=seed + 1)
    builder_fn().register(kernel)
    import_logs(kernel, offline.export())
    k23 = K23Interposer(kernel).install()
    process = spawn_and_run(kernel, path)
    return kernel, k23, process


class TestHandoffProtocol:
    def test_state_then_detach_order(self):
        kernel, k23, process = k23_run()
        steps = [step for step, _ in k23.timeline]
        state_idx = steps.index("ptracer:state-handoff")
        detach_idx = steps.index("ptracer:detach")
        fallback_idx = steps.index("libk23:sud-fallback-armed")
        assert state_idx < detach_idx < fallback_idx

    def test_fake_syscalls_never_reach_execution(self):
        """The kernel must never execute 1023/1024: the tracer swallows
        both at the entry stop."""
        kernel, k23, process = k23_run()
        fake = [r for r in kernel.syscall_log
                if r.nr in (K23_FAKE_SYSCALL_STATE, K23_FAKE_SYSCALL_DETACH)]
        assert fake == []

    def test_handoff_carries_startup_counts(self):
        kernel, k23, process = k23_run()
        state = k23.startup_state(process)
        assert state["startup_syscalls"] > 0
        assert state["execve_rewrites"] == 0

    def test_forged_fake_syscall_rejected(self):
        """§5.3: a fake syscall from code that is not libK23 (no handoff
        token) must be rejected, not honoured."""
        def forger(path="/usr/bin/hello"):
            builder = ProgramBuilder(path)
            builder.direct_syscall  # (built below)
            builder.string("m", "after\n")
            builder.start()
            # Forge the state-transfer fake syscall from application code.
            builder.direct_syscall(K23_FAKE_SYSCALL_DETACH, mark="forged")
            builder.libc("write", 1, data_ref("m"), 6)
            builder.exit(0)
            return builder

        offline_kernel = Kernel(seed=55)
        forger().register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run("/usr/bin/hello")
        kernel = Kernel(seed=56)
        forger().register(kernel)
        import_logs(kernel, offline.export())
        k23 = K23Interposer(kernel).install()
        process = spawn_and_run(kernel, "/usr/bin/hello")
        assert process.exit_status == 0
        # The forged attempt: rejected before libK23's genuine handoff?
        # The genuine handoff happens at constructor time (pre-main), so
        # the tracer has already detached by the time application code
        # forges one; the forged call simply executes and fails (ENOSYS)
        # under libK23's interposition instead of detaching anything.
        assert ("ptracer:detach" in [s for s, _ in k23.timeline])
        forged_records = [r for r in kernel.syscall_log
                          if r.nr == K23_FAKE_SYSCALL_DETACH]
        assert forged_records, "the forged call must reach execution"
        assert all(r.interposed for r in forged_records)

    def test_forged_fake_syscall_rejected_while_traced(self, kernel):
        """Directly exercise the verification path: a traced thread without
        the handoff token issues 1023 → rejected."""
        make_hello().register(kernel)
        tracer = K23Ptracer(kernel, "/opt/k23/libk23.so")
        process = kernel.spawn_process("/usr/bin/hello")
        tracer.attach(process)
        thread = process.main_thread
        from repro.arch.registers import Reg

        thread.context.set(Reg.RAX, K23_FAKE_SYSCALL_STATE)
        from repro.kernel.ptrace import SyscallStop

        stop = SyscallStop(thread, entry=True)
        proceed = tracer._handle_fake(stop, K23_FAKE_SYSCALL_STATE)
        assert proceed is False
        assert ("ptracer:rejected-fake", K23_FAKE_SYSCALL_STATE) in \
            tracer.timeline
        assert not tracer.detached


class TestExecveEnforcement:
    def test_preload_fix_counted(self):
        """An execve with scrubbed env gets LD_PRELOAD reinstated and the
        fix is recorded in the handoff state."""
        def execer(path="/bin/execer2"):
            builder = ProgramBuilder(path)
            builder.string("target", "/usr/bin/hello")
            builder.words("argv", [0, 0])
            builder.words("envp", [0])
            builder.start()
            from repro.arch.registers import Reg

            asm = builder.asm
            asm.lea_rip_label(Reg.RBX, "argv")
            asm.lea_rip_label(Reg.RAX, "target")
            asm.store(Reg.RBX, Reg.RAX)
            builder.libc("execve", data_ref("target"), data_ref("argv"),
                         data_ref("envp"))
            builder.exit(99)
            return builder

        offline_kernel = Kernel(seed=57)
        make_hello().register(offline_kernel)
        execer().register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run("/bin/execer2")
        offline.run("/usr/bin/hello")

        kernel = Kernel(seed=58)
        make_hello().register(kernel)
        execer().register(kernel)
        import_logs(kernel, offline.export())
        k23 = K23Interposer(kernel).install()
        process = spawn_and_run(kernel, "/bin/execer2")
        assert process.path == "/usr/bin/hello"
        assert process.exit_status == 0
        assert "/opt/k23/libk23.so" in process.env.get("LD_PRELOAD", "")
        steps = [s for s, _ in k23.timeline]
        assert "ptracer:execve-preload-fix" in steps
        assert "ptracer:reattached-for-execve" in steps
        assert kernel.uninterposed_syscalls(process.pid) == []
