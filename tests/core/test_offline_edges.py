"""OfflinePhase edge cases: export/import, site counts API, persist
idempotence, and logger behaviour under unusual programs."""

import pytest

from repro.core import K23Interposer, OfflinePhase
from repro.core.logs import LOG_ROOT, SiteLog
from repro.core.offline import import_logs
from repro.kernel import Kernel
from repro.workloads.coreutils import install_coreutils
from repro.workloads.programs import ProgramBuilder
from tests.simutil import make_hello, spawn_and_run


def test_export_import_roundtrip():
    source = Kernel(seed=76)
    install_coreutils(source, names=["/usr/bin/pwd"])
    offline = OfflinePhase(source)
    offline.run("/usr/bin/pwd")
    exported = offline.export()
    assert "/usr/bin/pwd" in exported

    destination = Kernel(seed=77)
    import_logs(destination, exported)
    loaded = SiteLog.load(destination.vfs, "/usr/bin/pwd")
    assert sorted(loaded) == sorted(offline.results["/usr/bin/pwd"])
    # Sealed on import.
    from repro.errors import VFSError

    with pytest.raises(VFSError):
        destination.vfs.append(f"{LOG_ROOT}/pwd.log", b"x")


def test_import_without_seal():
    destination = Kernel(seed=78)
    import_logs(destination, {"/usr/bin/x": "/lib/a.so,5\n"}, seal=False)
    destination.vfs.append(f"{LOG_ROOT}/x.log", b"/lib/a.so,6\n")  # allowed


def test_site_counts_api(kernel):
    install_coreutils(kernel, names=["/usr/bin/pwd", "/usr/bin/cat"])
    offline = OfflinePhase(kernel)
    offline.run("/usr/bin/pwd")
    offline.run("/usr/bin/cat")
    counts = offline.site_counts()
    assert counts == {"/usr/bin/pwd": 7, "/usr/bin/cat": 11}


def test_persist_writes_one_file_per_program(kernel):
    install_coreutils(kernel, names=["/usr/bin/pwd", "/usr/bin/cat"])
    offline = OfflinePhase(kernel)
    offline.run("/usr/bin/pwd")
    offline.run("/usr/bin/cat")
    paths = offline.persist(seal=False)
    assert sorted(paths) == [f"{LOG_ROOT}/cat.log", f"{LOG_ROOT}/pwd.log"]


def test_interposer_restored_after_run(kernel):
    """OfflinePhase must not leave the logger installed as the machine's
    governing interposer."""
    make_hello().register(kernel)
    sentinel = object()
    kernel.interposer = None
    offline = OfflinePhase(kernel)
    offline.run("/usr/bin/hello")
    assert kernel.interposer is None


def test_crashing_program_still_yields_partial_log(kernel):
    """A program that faults mid-run: everything logged before the crash
    is kept (the P4a PoC relies on this)."""
    from repro.arch.registers import Reg

    builder = ProgramBuilder("/bin/crashy")
    builder.start()
    builder.libc("getpid")
    builder.asm.xor_rr(Reg.RBX, Reg.RBX)
    builder.asm.load(Reg.RAX, Reg.RBX)  # NULL read: SIGSEGV
    builder.exit(0)
    builder.register(kernel)
    offline = OfflinePhase(kernel)
    process, log = offline.run("/bin/crashy")
    assert process.exited and process.exit_status != 0
    assert len(log) == 1  # getpid made it in


def test_k23_with_foreign_program_log(kernel):
    """Online K23 for a program whose log belongs to a DIFFERENT binary
    layout: validation skips stale entries; fallback still covers."""
    install_coreutils(kernel, names=["/usr/bin/pwd"])
    # A log recorded for some other build: offsets point into nonsense.
    forged = SiteLog("/usr/bin/pwd")
    forged.add("/usr/bin/pwd", 3)    # mid-instruction
    forged.add("/usr/bin/pwd", 17)   # arbitrary
    import_logs(kernel, {"/usr/bin/pwd": forged.render()})
    k23 = K23Interposer(kernel, variant="ultra").install()
    process = spawn_and_run(kernel, "/usr/bin/pwd")
    assert process.exit_status == 0
    assert kernel.uninterposed_syscalls(process.pid) == []
    state = process.interposer_state["k23"]
    assert len(state["skipped_log_entries"]) >= 1
