"""K23 end-to-end: offline phase, online phase, handoff, fallback, guards."""

import pytest

from repro.core import K23Interposer, OfflinePhase
from repro.core.liblogger import LibLogger
from repro.core.logs import SiteLog
from repro.core.offline import import_logs
from repro.cpu.cycles import Event
from repro.kernel import Kernel
from repro.kernel.syscalls import Nr
from repro.workloads.programs import ProgramBuilder, data_ref
from tests.simutil import make_hello, spawn_and_run


def getpid_loop(path="/usr/bin/target", iterations=3):
    builder = ProgramBuilder(path)
    builder.string("msg", "ok\n")
    builder.start()
    builder.loop(iterations)
    builder.libc("getpid")
    builder.end_loop()
    builder.libc("write", 1, data_ref("msg"), 3)
    builder.exit(0)
    return builder


def run_offline(kernel, path="/usr/bin/target"):
    offline = OfflinePhase(kernel)
    process, log = offline.run(path)
    offline.persist()
    return offline, process, log


class TestOfflinePhase:
    def test_logs_unique_sites(self, kernel):
        getpid_loop().register(kernel)
        offline, process, log = run_offline(kernel)
        # getpid (×3, one site), write, exit — three unique sites.
        assert len(log) == 3

    def test_sites_are_region_relative(self, kernel):
        getpid_loop().register(kernel)
        offline, process, log = run_offline(kernel)
        from repro.loader.libc import LIBC_PATH

        _base, libc, _ns = process.loaded_images[LIBC_PATH]
        expected = {libc.syscall_sites["getpid.syscall"],
                    libc.syscall_sites["write.syscall"],
                    libc.syscall_sites["exit.syscall"]}
        assert {off for region, off in log if region == LIBC_PATH} == expected

    def test_premain_and_stub_sites_excluded(self, kernel):
        getpid_loop().register(kernel)
        offline, process, log = run_offline(kernel)
        assert all(not region.startswith("[") for region, _off in log)

    def test_repeat_runs_merge(self, kernel):
        getpid_loop().register(kernel)
        offline = OfflinePhase(kernel)
        offline.run("/usr/bin/target")
        _, log2 = offline.run("/usr/bin/target")
        assert len(log2) == 3  # no duplicates across runs

    def test_persist_seals_directory(self, kernel):
        getpid_loop().register(kernel)
        offline, _, _ = run_offline(kernel)
        from repro.core.logs import LOG_ROOT
        from repro.errors import VFSError

        with pytest.raises(VFSError):
            kernel.vfs.create(f"{LOG_ROOT}/forged.log", b"")

    def test_program_output_unaffected(self, kernel):
        getpid_loop().register(kernel)
        offline, process, _ = run_offline(kernel)
        assert bytes(process.output) == b"ok\n"
        assert process.exit_status == 0


def k23_machine(variant="default", builder_fn=getpid_loop, seed=42):
    """Offline phase on one machine, online on a fresh one (log export)."""
    offline_kernel = Kernel(seed=seed)
    builder_fn().register(offline_kernel)
    offline = OfflinePhase(offline_kernel)
    offline.run("/usr/bin/target")

    online_kernel = Kernel(seed=seed + 1)
    builder_fn().register(online_kernel)
    import_logs(online_kernel, offline.export())
    k23 = K23Interposer(online_kernel, variant=variant).install()
    return online_kernel, k23


class TestK23Online:
    def test_program_runs_correctly(self):
        kernel, k23 = k23_machine()
        process = spawn_and_run(kernel, "/usr/bin/target")
        assert process.exit_status == 0
        assert bytes(process.output) == b"ok\n"

    def test_logged_sites_rewritten(self):
        kernel, k23 = k23_machine()
        process = spawn_and_run(kernel, "/usr/bin/target")
        sites = k23.rewritten_sites(process)
        assert len(sites) == 3
        for site in sites:
            assert process.address_space.read_kernel(site, 2) == b"\xff\xd0"

    def test_exhaustive_no_app_syscall_escapes(self):
        """The headline property: every application syscall is interposed —
        startup (ptrace), logged sites (rewrite), everything else (SUD)."""
        kernel, k23 = k23_machine()
        process = spawn_and_run(kernel, "/usr/bin/target")
        assert kernel.uninterposed_syscalls(process.pid) == []

    def test_vdso_disabled_no_vdso_calls(self):
        def clock_builder(path="/usr/bin/target"):
            builder = ProgramBuilder(path)
            builder.buffer("ts", 16)
            builder.start()
            builder.libc("clock_gettime", 0, data_ref("ts"))
            builder.exit(0)
            return builder

        kernel, k23 = k23_machine(builder_fn=clock_builder)
        process = spawn_and_run(kernel, "/usr/bin/target")
        assert not kernel.vdso_calls
        assert any(r.nr == Nr.clock_gettime
                   for r in kernel.app_requested_syscalls(process.pid))

    def test_handoff_transfers_startup_state(self):
        kernel, k23 = k23_machine()
        process = spawn_and_run(kernel, "/usr/bin/target")
        state = k23.startup_state(process)
        assert state is not None
        assert state["startup_syscalls"] > 10

    def test_ptracer_detached_after_handoff(self):
        kernel, k23 = k23_machine()
        process = spawn_and_run(kernel, "/usr/bin/target")
        assert process.tracer is None or process.tracer.detached
        steps = [step for step, _ in k23.timeline]
        assert "ptracer:state-handoff" in steps
        assert "ptracer:detach" in steps

    def test_rewritten_path_taken_after_init(self):
        kernel, k23 = k23_machine()
        process = spawn_and_run(kernel, "/usr/bin/target")
        vias = [via for nr, via in k23.handled[process.pid]
                if nr == Nr.getpid]
        assert "rewrite" in vias

    def test_unlogged_site_falls_back_to_sud(self):
        """A syscall absent from the offline log is still interposed (P2a)
        and its site is NOT rewritten (unlike lazypoline)."""
        def partial_builder(path="/usr/bin/target"):
            builder = getpid_loop(path)
            return builder

        # Offline logs only getpid/write/exit; online program also calls
        # getuid, which the offline run never saw.
        offline_kernel = Kernel(seed=1)
        getpid_loop().register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run("/usr/bin/target")

        online_kernel = Kernel(seed=2)
        builder = ProgramBuilder("/usr/bin/target")
        builder.string("msg", "ok\n")
        builder.start()
        builder.loop(3)
        builder.libc("getpid")
        builder.end_loop()
        builder.libc("getuid")  # never logged offline
        builder.libc("write", 1, data_ref("msg"), 3)
        builder.exit(0)
        builder.register(online_kernel)
        import_logs(online_kernel, offline.export())
        k23 = K23Interposer(online_kernel).install()
        process = spawn_and_run(online_kernel, "/usr/bin/target")

        assert process.exit_status == 0
        vias = dict((nr, via) for nr, via in k23.handled[process.pid])
        assert vias.get(Nr.getuid) == "sud"
        assert online_kernel.uninterposed_syscalls(process.pid) == []
        # The getuid site must remain an intact syscall instruction.
        from repro.loader.libc import LIBC_PATH

        base, libc, _ns = process.loaded_images[LIBC_PATH]
        site = base + libc.syscall_sites["getuid.syscall"]
        assert process.address_space.read_kernel(site, 2) == b"\x0f\x05"

    def test_log_validation_skips_non_syscall_entries(self):
        """A log entry pointing at bytes that are no longer a syscall must
        be skipped, not rewritten."""
        online_kernel = Kernel(seed=3)
        getpid_loop().register(online_kernel)
        forged = SiteLog("/usr/bin/target")
        forged.add("/usr/bin/target", 0)  # _start's endbr64, not a syscall
        import_logs(online_kernel, {"/usr/bin/target": forged.render()})
        k23 = K23Interposer(online_kernel).install()
        process = spawn_and_run(online_kernel, "/usr/bin/target")
        assert process.exit_status == 0
        state = process.interposer_state["k23"]
        assert state["rewritten"] == []
        assert state["skipped_log_entries"]

    def test_prctl_disable_aborts(self):
        """P1b fix: disabling SUD through prctl kills the process."""
        from repro.kernel.syscalls import (
            PR_SET_SYSCALL_USER_DISPATCH,
            PR_SYS_DISPATCH_OFF,
        )

        def evil_builder(path="/usr/bin/target"):
            builder = ProgramBuilder(path)
            builder.start()
            builder.libc("prctl", PR_SET_SYSCALL_USER_DISPATCH,
                         PR_SYS_DISPATCH_OFF, 0, 0, 0)
            builder.libc("getpid")
            builder.exit(0)
            return builder

        kernel, k23 = k23_machine(builder_fn=evil_builder)
        process = spawn_and_run(kernel, "/usr/bin/target")
        assert process.exited
        assert process.exit_status != 0
        assert "P1b" in getattr(process, "kill_detail", "")

    def test_variants_validate(self):
        with pytest.raises(ValueError):
            K23Interposer(Kernel(), variant="mega")

    @pytest.mark.parametrize("variant,expect_hash,expect_stack", [
        ("default", 0, 0),
        ("ultra", 1, 0),
        ("ultra+", 1, 1),
    ])
    def test_variant_feature_charges(self, variant, expect_hash,
                                     expect_stack):
        kernel, k23 = k23_machine(variant=variant)
        spawn_and_run(kernel, "/usr/bin/target")
        hash_checks = kernel.cycles.counts[Event.HASHSET_CHECK]
        stack_switches = kernel.cycles.counts[Event.STACK_SWITCH]
        assert (hash_checks > 0) == bool(expect_hash)
        assert (stack_switches > 0) == bool(expect_stack)

    def test_blocking_server_under_k23(self):
        from tests.kernel.test_net import echo_server

        offline_kernel = Kernel(seed=5)
        echo_server(offline_kernel, port=8080, requests=1)
        offline = OfflinePhase(offline_kernel)

        def driver(kern, proc):
            kern.run_process(proc, max_steps=200_000)
            conn = kern.net.connect(8080)
            conn.client_send(b"offline")

        offline.run("/bin/echo1", driver=driver)

        online_kernel = Kernel(seed=6)
        echo_server(online_kernel, port=8080, requests=1)
        import_logs(online_kernel, offline.export())
        k23 = K23Interposer(online_kernel).install()
        process = online_kernel.spawn_process("/bin/echo1")
        online_kernel.run_process(process, max_steps=400_000)
        assert not process.exited
        conn = online_kernel.net.connect(8080)
        conn.client_send(b"ping")
        online_kernel.run_process(process, max_steps=400_000)
        assert conn.client_recv_all() == b"ping"
        assert process.exited and process.exit_status == 0
