"""Pitfall PoC tests: each cell of Table 3, plus the native baselines."""

import pytest

from repro.pitfalls import (
    K23_KIT,
    LAZYPOLINE_KIT,
    NATIVE_KIT,
    PITFALL_IDS,
    ZPOLINE_KIT,
    evaluate_pitfall,
)
from repro.pitfalls.matrix import PAPER_TABLE3, pitfall_matrix, matches_paper, render_table3

KITS = {"zpoline": ZPOLINE_KIT, "lazypoline": LAZYPOLINE_KIT, "K23": K23_KIT}


@pytest.mark.parametrize("pitfall", PITFALL_IDS)
@pytest.mark.parametrize("kit_name", list(KITS))
def test_matrix_cell_matches_paper(pitfall, kit_name):
    """Every (pitfall, interposer) cell reproduces the paper's Table 3."""
    outcome = evaluate_pitfall(pitfall, KITS[kit_name])
    expected = PAPER_TABLE3[pitfall][kit_name]
    assert outcome.handled == expected, outcome.evidence


class TestNativeBaselines:
    """Sanity-check the PoCs against native execution: the programs
    themselves must behave as designed before any interposer touches them."""

    def test_p3a_data_intact_natively(self):
        outcome = evaluate_pitfall("P3a", NATIVE_KIT)
        assert outcome.handled

    def test_p3b_data_intact_natively(self):
        outcome = evaluate_pitfall("P3b", NATIVE_KIT)
        assert outcome.handled

    def test_p4a_null_call_faults_natively(self):
        """Without a trampoline the NULL call crashes — the classic
        behaviour P4a destroys."""
        outcome = evaluate_pitfall("P4a", NATIVE_KIT)
        assert outcome.handled  # handled == "did not survive"
        assert "SURVIVED" not in outcome.evidence

    def test_p5_threads_survive_natively(self):
        outcome = evaluate_pitfall("P5", NATIVE_KIT)
        assert outcome.handled


class TestEvidenceQuality:
    def test_p4b_reports_bitmap_reservation(self):
        outcome = evaluate_pitfall("P4b", ZPOLINE_KIT)
        assert "TiB" in outcome.evidence

    def test_p4b_reports_hashset_size(self):
        outcome = evaluate_pitfall("P4b", K23_KIT)
        assert "hash set" in outcome.evidence

    def test_p5_lazypoline_names_torn_instruction(self):
        outcome = evaluate_pitfall("P5", LAZYPOLINE_KIT)
        assert not outcome.handled
        assert "torn" in outcome.evidence

    def test_unknown_pitfall_rejected(self):
        with pytest.raises(ValueError):
            evaluate_pitfall("P9", ZPOLINE_KIT)


def test_full_matrix_matches_paper():
    outcomes = pitfall_matrix()
    assert matches_paper(outcomes)
    rendered = render_table3(outcomes)
    assert "!" not in rendered  # no divergence markers


def test_render_with_evidence():
    outcomes = pitfall_matrix(pitfalls=("P1b",))
    text = render_table3(outcomes, show_evidence=True)
    assert "P1b" in text and "[P1b/zpoline]" in text
