"""Instruction text rendering and remaining decoder surface."""

import pytest

from repro.arch import Asm, decode
from repro.arch.isa import (
    Cond,
    Instruction,
    Mnemonic,
    SYSCALL_PATTERNS,
    modrm,
    rex,
    split_modrm,
)
from repro.arch.registers import (
    CALLEE_SAVED_REGS,
    Reg,
    SYSCALL_ARG_REGS,
    SYSCALL_CLOBBERED_REGS,
    parse_reg,
    reg_name,
)


class TestTextRendering:
    @pytest.mark.parametrize("build,expected", [
        (lambda a: a.mov_ri(Reg.RAX, 0x3c), "mov $0x3c, %rax"),
        (lambda a: a.mov_rr(Reg.RDI, Reg.RAX), "mov %rax, %rdi"),
        (lambda a: a.load(Reg.RAX, Reg.RDI), "mov (%rdi), %rax"),
        (lambda a: a.store(Reg.RDI, Reg.RAX), "mov %rax, (%rdi)"),
        (lambda a: a.add_rr(Reg.RBX, Reg.RCX), "add %rcx, %rbx"),
        (lambda a: a.sub_ri(Reg.RAX, 8), "sub $0x8, %rax"),
        (lambda a: a.push(Reg.R12), "push %r12"),
        (lambda a: a.pop(Reg.R12), "pop %r12"),
        (lambda a: a.inc(Reg.RDX), "inc %rdx"),
        (lambda a: a.call_reg(Reg.R10), "callq *%r10"),
        (lambda a: a.jmp_reg(Reg.RAX), "jmp *%rax"),
        (lambda a: a.hostcall(9), "hostcall $9"),
        (lambda a: a.syscall_(), "syscall"),
        (lambda a: a.sysenter_(), "sysenter"),
        (lambda a: a.ret(), "ret"),
        (lambda a: a.load8(Reg.RAX, Reg.RBX), "movb (%rbx), %raxb"),
        (lambda a: a.store8(Reg.RBX, Reg.RAX), "movb %raxb, (%rbx)"),
    ])
    def test_render(self, build, expected):
        asm = Asm()
        build(asm)
        assert decode(asm.assemble()).text() == expected

    def test_branch_rendering(self):
        asm = Asm()
        asm.label("top")
        asm.jmp("top")
        text = decode(asm.assemble()).text()
        assert text.startswith("jmp .")

    def test_jcc_rendering(self):
        asm = Asm()
        asm.label("top")
        asm.je("top")
        assert decode(asm.assemble()).text().startswith("je .")

    def test_lea_rendering(self):
        asm = Asm()
        asm.lea_rip_label(Reg.RSI, "x")
        asm.label("x")
        assert "lea" in decode(asm.assemble()).text()


class TestModrmHelpers:
    @pytest.mark.parametrize("mod,reg,rm", [(0, 0, 0), (3, 7, 7), (2, 5, 3)])
    def test_pack_unpack_roundtrip(self, mod, reg, rm):
        assert split_modrm(modrm(mod, reg, rm)) == (mod, reg, rm)

    def test_rex_bits(self):
        assert rex() == 0x40
        assert rex(w=True) == 0x48
        assert rex(w=True, r=True, x=True, b=True) == 0x4F


class TestRegisters:
    def test_names_roundtrip(self):
        for reg in Reg:
            assert parse_reg(reg_name(reg)) is reg
            assert parse_reg("%" + reg_name(reg)) is reg

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            parse_reg("xmm0")

    def test_abi_register_sets(self):
        assert SYSCALL_ARG_REGS[0] is Reg.RDI
        assert SYSCALL_ARG_REGS[3] is Reg.R10  # not RCX: the kernel ABI
        assert Reg.RCX in SYSCALL_CLOBBERED_REGS
        assert Reg.R11 in SYSCALL_CLOBBERED_REGS
        assert Reg.RBX in CALLEE_SAVED_REGS

    def test_rex_bit_property(self):
        assert not Reg.RAX.needs_rex_bit
        assert Reg.R8.needs_rex_bit
        assert Reg.R8.low3 == Reg.RAX.low3


class TestJcc32:
    @pytest.mark.parametrize("cc,cond", [
        (0x84, Cond.E), (0x85, Cond.NE), (0x8C, Cond.L), (0x8D, Cond.GE),
        (0x8E, Cond.LE), (0x8F, Cond.G), (0x88, Cond.S), (0x89, Cond.NS),
    ])
    def test_long_form_conditions(self, cc, cond):
        insn = decode(bytes([0x0F, cc, 4, 0, 0, 0]))
        assert insn.mnemonic is Mnemonic.JCC_REL
        assert insn.cond is cond
        assert insn.rel == 4


def test_syscall_patterns_are_the_two_trap_encodings():
    assert SYSCALL_PATTERNS == (b"\x0f\x05", b"\x0f\x34")


def test_instruction_is_frozen():
    insn = decode(b"\x90")
    with pytest.raises(Exception):
        insn.length = 5
