"""Decoder unit tests: byte-exact encodings and rejection behaviour."""

import pytest

from repro.arch import decode
from repro.arch.isa import Cond, Mnemonic
from repro.arch.registers import Reg
from repro.errors import DecodeError


def test_syscall_is_two_bytes():
    insn = decode(b"\x0f\x05")
    assert insn.mnemonic is Mnemonic.SYSCALL
    assert insn.length == 2
    assert insn.is_syscall_site


def test_sysenter_is_two_bytes():
    insn = decode(b"\x0f\x34")
    assert insn.mnemonic is Mnemonic.SYSENTER
    assert insn.length == 2
    assert insn.is_syscall_site


def test_call_rax_is_two_bytes():
    """The size match that makes the zpoline rewrite possible at all."""
    insn = decode(b"\xff\xd0")
    assert insn.mnemonic is Mnemonic.CALL_REG
    assert insn.reg is Reg.RAX
    assert insn.length == 2


def test_call_reg_high_register_needs_rex():
    insn = decode(b"\x41\xff\xd2")  # callq *%r10
    assert insn.mnemonic is Mnemonic.CALL_REG
    assert insn.reg is Reg.R10
    assert insn.length == 3


def test_jmp_reg():
    insn = decode(b"\xff\xe0")  # jmp *%rax
    assert insn.mnemonic is Mnemonic.JMP_REG
    assert insn.reg is Reg.RAX


def test_nop_ret_int3_hlt():
    assert decode(b"\x90").mnemonic is Mnemonic.NOP
    assert decode(b"\xc3").mnemonic is Mnemonic.RET
    assert decode(b"\xcc").mnemonic is Mnemonic.INT3
    assert decode(b"\xf4").mnemonic is Mnemonic.HLT


def test_endbr64():
    insn = decode(b"\xf3\x0f\x1e\xfa")
    assert insn.mnemonic is Mnemonic.ENDBR64
    assert insn.length == 4


def test_mov_ri64_carries_immediate_bytes():
    # mov $0x050f, %rax → REX.W B8 0F 05 00 00 00 00 00 00
    insn = decode(b"\x48\xb8\x0f\x05\x00\x00\x00\x00\x00\x00")
    assert insn.mnemonic is Mnemonic.MOV_RI
    assert insn.reg is Reg.RAX
    assert insn.imm == 0x050F
    assert insn.length == 10
    # The syscall opcode bytes hide inside the immediate (a "partial
    # instruction" in the paper's terminology).
    assert b"\x0f\x05" in insn.raw


def test_mov_ri32_zero_extends():
    insn = decode(b"\xb8\x2a\x00\x00\x00")  # mov $42, %eax
    assert insn.mnemonic is Mnemonic.MOV_RI
    assert insn.imm == 42
    assert insn.length == 5


def test_mov_rr():
    insn = decode(b"\x48\x89\xc7")  # mov %rax, %rdi
    assert insn.mnemonic is Mnemonic.MOV_RR
    assert insn.reg is Reg.RDI  # destination
    assert insn.rm is Reg.RAX  # source


def test_mov_load_store():
    load = decode(b"\x48\x8b\x07")  # mov (%rdi), %rax
    assert load.mnemonic is Mnemonic.MOV_LOAD
    assert load.reg is Reg.RAX and load.rm is Reg.RDI
    store = decode(b"\x48\x89\x07")  # mov %rax, (%rdi)
    assert store.mnemonic is Mnemonic.MOV_STORE
    assert store.reg is Reg.RAX and store.rm is Reg.RDI


def test_byte_load_store():
    store = decode(b"\x88\x03")  # movb %al, (%rbx)
    assert store.mnemonic is Mnemonic.MOV_STORE8
    assert store.reg is Reg.RAX and store.rm is Reg.RBX
    load = decode(b"\x8a\x03")  # movb (%rbx), %al
    assert load.mnemonic is Mnemonic.MOV_LOAD8


def test_lea_rip_relative():
    insn = decode(b"\x48\x8d\x05\x10\x00\x00\x00")  # lea 0x10(%rip), %rax
    assert insn.mnemonic is Mnemonic.LEA_RIP
    assert insn.reg is Reg.RAX
    assert insn.rel == 0x10
    assert insn.length == 7


def test_arithmetic_rr():
    assert decode(b"\x48\x01\xc3").mnemonic is Mnemonic.ADD_RR
    assert decode(b"\x48\x29\xc3").mnemonic is Mnemonic.SUB_RR
    assert decode(b"\x48\x39\xc3").mnemonic is Mnemonic.CMP_RR
    assert decode(b"\x48\x31\xff").mnemonic is Mnemonic.XOR_RR
    assert decode(b"\x48\x85\xc0").mnemonic is Mnemonic.TEST_RR


def test_grp1_imm8_signed():
    insn = decode(b"\x48\x83\xe8\xff")  # sub $-1, %rax
    assert insn.mnemonic is Mnemonic.SUB_RI
    assert insn.imm == -1


def test_grp1_imm32():
    insn = decode(b"\x48\x81\xc0\x00\x01\x00\x00")  # add $256, %rax
    assert insn.mnemonic is Mnemonic.ADD_RI
    assert insn.imm == 256
    assert insn.length == 7


def test_inc_dec():
    assert decode(b"\x48\xff\xc0").mnemonic is Mnemonic.INC
    assert decode(b"\x48\xff\xc8").mnemonic is Mnemonic.DEC


def test_branches():
    jmp8 = decode(b"\xeb\xfe")  # jmp .-2 (self)
    assert jmp8.mnemonic is Mnemonic.JMP_REL and jmp8.rel == -2
    jmp32 = decode(b"\xe9\x00\x01\x00\x00")
    assert jmp32.rel == 0x100
    call = decode(b"\xe8\xfc\xff\xff\xff")
    assert call.mnemonic is Mnemonic.CALL_REL and call.rel == -4
    je = decode(b"\x74\x05")
    assert je.mnemonic is Mnemonic.JCC_REL and je.cond is Cond.E
    jne32 = decode(b"\x0f\x85\x10\x00\x00\x00")
    assert jne32.cond is Cond.NE and jne32.rel == 0x10


def test_push_pop_with_rex():
    assert decode(b"\x50").reg is Reg.RAX
    assert decode(b"\x41\x50").reg is Reg.R8
    assert decode(b"\x58").mnemonic is Mnemonic.POP
    assert decode(b"\x41\x5f").reg is Reg.R15


def test_hostcall_escape():
    insn = decode(b"\x0f\x1f\xf8\x2a\x00")
    assert insn.mnemonic is Mnemonic.HOSTCALL
    assert insn.hostcall == 42
    assert insn.length == 5


def test_hostcall_never_contains_syscall_bytes():
    from repro.arch.isa import HOSTCALL_PREFIX

    assert b"\x0f\x05" not in HOSTCALL_PREFIX
    assert b"\x0f\x34" not in HOSTCALL_PREFIX


def test_serialization_instructions():
    assert decode(b"\x0f\xa2").mnemonic is Mnemonic.CPUID
    assert decode(b"\x0f\xae\xf0").mnemonic is Mnemonic.MFENCE
    assert decode(b"\x0f\x0b").mnemonic is Mnemonic.UD2


@pytest.mark.parametrize(
    "junk",
    [b"\x06", b"\x0f\xff", b"\xff\x00", b"\x48", b"\xe9\x00", b"\x48\xb8\x00"],
)
def test_rejects_junk_and_truncation(junk):
    with pytest.raises(DecodeError):
        decode(junk)


def test_decode_at_offset():
    buf = b"\x90\x90\x0f\x05"
    insn = decode(buf, 2)
    assert insn.mnemonic is Mnemonic.SYSCALL


def test_text_rendering_smoke():
    assert decode(b"\xff\xd0").text() == "callq *%rax"
    assert decode(b"\x0f\x05").text() == "syscall"
