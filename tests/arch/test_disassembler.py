"""Disassembler tests: linear-sweep desync and byte-scan over-approximation —
the mechanics behind pitfalls P2a and P3a."""

from repro.arch import (
    Asm,
    SiteKind,
    classify_syscall_sites,
    find_syscall_sites_bytescan,
    find_syscall_sites_linear,
    linear_sweep,
)
from repro.arch.disassembler import sweep_statistics
from repro.arch.registers import Reg


def clean_program():
    """A program with no embedded data: sweep and scan should agree."""
    a = Asm()
    a.endbr64()
    a.mov_ri(Reg.RAX, 39)  # getpid
    a.syscall_site("s0")
    a.mov_ri(Reg.RAX, 60)
    a.xor_rr(Reg.RDI, Reg.RDI)
    a.syscall_site("s1")
    a.ret()
    return a


def test_clean_program_sweep_finds_all_sites():
    a = clean_program()
    code = a.assemble()
    assert find_syscall_sites_linear(code) == sorted(a.marks.values())


def test_clean_program_no_desync():
    a = clean_program()
    stats = sweep_statistics(a.assemble())
    assert stats["desync_bytes"] == 0
    assert stats["syscall_sites"] == 2


def test_bytescan_matches_on_clean_program():
    a = clean_program()
    code = a.assemble()
    assert find_syscall_sites_bytescan(code) == sorted(a.marks.values())


def embedded_data_program():
    """Data in the code stream desyncs the sweep (jump-table idiom)."""
    a = Asm()
    a.mov_ri(Reg.RAX, 0)
    a.syscall_site("real")
    a.jmp("after_table")
    # A "jump table" containing bytes that resemble a syscall and bytes
    # that do not decode at all.
    a.label("table")
    a.raw(b"\x0f\x05\x06\x07\xd8\xff\xff")
    a.label("after_table")
    a.mov_ri(Reg.RAX, 1)
    a.syscall_site("real2")
    a.ret()
    return a


def test_bytescan_flags_data_as_syscall():
    a = embedded_data_program()
    code = a.assemble()
    scan = set(find_syscall_sites_bytescan(code))
    assert set(a.marks.values()) <= scan
    phantom = scan - set(a.marks.values())
    assert phantom, "data bytes resembling 0F 05 must be (wrongly) flagged"
    for offset in phantom:
        assert any(start <= offset < end for start, end in a.data_spans)


def test_linear_sweep_desyncs_on_embedded_data():
    a = embedded_data_program()
    stats = sweep_statistics(a.assemble())
    assert stats["desync_bytes"] > 0


def test_classification_matches_figure1_taxonomy():
    a = Asm()
    a.mov_ri(Reg.RAX, 0)
    a.syscall_site("valid")
    # Partial instruction: 0F 05 inside a mov imm64 (value 0x050F → LE bytes
    # 0F 05 ...).
    a.mark("partial_host")
    a.mov_ri(Reg.RBX, 0x050F, width=64)
    a.raw(b"\x0f\x05")  # data resembling a syscall
    a.ret()
    code = a.assemble()
    candidates = find_syscall_sites_bytescan(code)
    graded = dict(
        classify_syscall_sites(candidates, [a.marks["valid"]], a.data_spans)
    )
    assert graded[a.marks["valid"]] is SiteKind.VALID
    partial_offset = a.marks["partial_host"] + 2  # REX + opcode, then imm
    assert graded[partial_offset] is SiteKind.PARTIAL
    data_offset = a.data_spans[0][0]
    assert graded[data_offset] is SiteKind.DATA
    assert len(graded) == 3


def test_sweep_items_cover_every_byte():
    a = embedded_data_program()
    code = a.assemble()
    covered = 0
    for item in linear_sweep(code):
        covered += 1 if item.is_desync else item.instruction.length
    assert covered == len(code)


def test_sweep_respects_range_bounds():
    a = clean_program()
    code = a.assemble()
    first = a.marks["s0"]
    items = list(linear_sweep(code, start=first, end=first + 2))
    assert len(items) == 1
    assert items[0].instruction.is_syscall_site


def test_truncated_tail_yields_desync():
    # A mov imm64 cut short at the buffer edge cannot decode.
    code = b"\x48\xb8\x01\x02"
    items = list(linear_sweep(code))
    assert all(item.is_desync for item in items)
