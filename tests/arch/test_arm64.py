"""SimA64 tests: the fixed-length porting analysis (§7)."""

import pytest

from repro.arch import Asm
from repro.arch.arm64 import (
    A64Builder,
    INSN_BYTES,
    SVC_0,
    b,
    blr,
    compare_discovery,
    find_svc_sites,
    movz,
    rewrite_feasibility,
    sweep,
)
from repro.arch.registers import Reg


def sample_builder() -> A64Builder:
    builder = A64Builder()
    builder.emit(movz(8, 93))     # x8 = exit nr
    builder.svc()
    builder.nop(2)
    builder.word_data(0x12345678)  # literal pool
    builder.word_data(SVC_0)       # literal that *equals* the trap encoding
    builder.emit(movz(8, 64))
    builder.svc()
    builder.ret()
    return builder


def test_every_slot_decodes():
    builder = sample_builder()
    code = builder.assemble()
    insns = list(sweep(code))
    assert len(insns) == len(code) // INSN_BYTES
    assert all(insn.mnemonic for insn in insns)


def test_sweep_rejects_misaligned_buffers():
    with pytest.raises(ValueError):
        list(sweep(b"\x01\x02\x03"))


def test_all_true_sites_found():
    builder = sample_builder()
    found = find_svc_sites(builder.assemble())
    assert set(builder.svc_sites) <= set(found)


def test_only_collision_is_aligned_literal():
    """The sole false positive on fixed-length: a literal word equal to the
    SVC encoding — always aligned and pool-resident (filterable), unlike
    x86's arbitrary-offset partial instructions."""
    builder = sample_builder()
    found = set(find_svc_sites(builder.assemble()))
    phantoms = found - set(builder.svc_sites)
    assert phantoms == {builder.data_slots[1]}
    assert all(offset % INSN_BYTES == 0 for offset in phantoms)


def test_encoders_validate_operands():
    with pytest.raises(ValueError):
        movz(31, 0)
    with pytest.raises(ValueError):
        movz(0, 1 << 16)
    with pytest.raises(ValueError):
        b(1 << 25)
    with pytest.raises(ValueError):
        blr(31)


def test_branch_encoding_roundtrip():
    word = b(-2)
    assert word >> 26 == 0b000101
    assert word & ((1 << 26) - 1) == (-2) & ((1 << 26) - 1)


def test_rewrite_feasibility_analysis():
    builder = sample_builder()
    analysis = rewrite_feasibility(builder.assemble())
    assert analysis["replacement_width_matches"]
    assert not analysis["needs_null_trampoline"]
    assert analysis["branch_range_bytes"] == 128 * (1 << 20)
    assert set(builder.svc_sites) <= set(analysis["sites"])


def test_compare_discovery_artifact():
    """x86 sweep desyncs and misses a hidden site; the A64 sweep is exact."""
    x86 = Asm()
    x86.mov_ri(Reg.RAX, 39)
    x86.mark("visible")
    x86.syscall_()
    x86.jmp("hidden")
    x86.raw(b"\x48\xb8")  # absorbs the next mov+syscall
    x86.label("hidden")
    x86.mov_ri(Reg.RAX, 102)
    x86.mark("hidden_site")
    x86.syscall_()
    x86.nop(8)
    x86.ret()
    report = compare_discovery(x86.assemble(),
                               [x86.marks["visible"],
                                x86.marks["hidden_site"]],
                               sample_builder())
    assert "1/2 true sites found" in report       # x86 missed the hidden one
    assert "2/2 true sites found" in report       # A64 exact
    assert "desync" in report
