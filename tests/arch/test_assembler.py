"""Assembler unit tests: encodings round-trip through the decoder and
labels/fixups resolve to correct displacements."""

import pytest

from repro.arch import Asm, decode
from repro.arch.isa import Mnemonic
from repro.arch.registers import Reg
from repro.errors import AssemblerError


def roundtrip(build):
    """Assemble one instruction and decode it back."""
    a = Asm()
    build(a)
    code = a.assemble()
    insn = decode(code)
    assert insn.length == len(code)
    return insn


def test_syscall_encoding():
    a = Asm()
    a.syscall_()
    assert a.assemble() == b"\x0f\x05"


def test_sysenter_encoding():
    a = Asm()
    a.sysenter_()
    assert a.assemble() == b"\x0f\x34"


def test_call_rax_encoding():
    a = Asm()
    a.call_reg(Reg.RAX)
    assert a.assemble() == b"\xff\xd0"


def test_mov_ri_roundtrip_small():
    insn = roundtrip(lambda a: a.mov_ri(Reg.RAX, 60))
    assert insn.mnemonic is Mnemonic.MOV_RI
    assert insn.imm == 60
    assert insn.length == 5  # 32-bit form chosen automatically


def test_mov_ri_roundtrip_large():
    insn = roundtrip(lambda a: a.mov_ri(Reg.RAX, 0x1234_5678_9ABC))
    assert insn.imm == 0x1234_5678_9ABC
    assert insn.length == 10


def test_mov_ri_forced_width():
    insn = roundtrip(lambda a: a.mov_ri(Reg.RAX, 1, width=64))
    assert insn.length == 10
    with pytest.raises(AssemblerError):
        Asm().mov_ri(Reg.RAX, 1 << 40, width=32)


def test_mov_ri_high_register():
    insn = roundtrip(lambda a: a.mov_ri(Reg.R10, 500))
    assert insn.reg is Reg.R10
    assert insn.imm == 500


@pytest.mark.parametrize("reg", list(Reg))
def test_push_pop_all_registers(reg):
    if reg.low3 in (0b100, 0b101):
        pass  # push/pop rsp/rbp are legal; no base-register restriction here
    a = Asm()
    a.push(reg).pop(reg)
    code = a.assemble()
    first = decode(code)
    assert first.mnemonic is Mnemonic.PUSH and first.reg is reg
    second = decode(code, first.length)
    assert second.mnemonic is Mnemonic.POP and second.reg is reg


def test_mov_rr_operand_order():
    insn = roundtrip(lambda a: a.mov_rr(Reg.RDI, Reg.RAX))  # mov %rax, %rdi
    assert insn.reg is Reg.RDI  # destination
    assert insn.rm is Reg.RAX


def test_load_store_roundtrip():
    load = roundtrip(lambda a: a.load(Reg.RAX, Reg.RDI))
    assert load.mnemonic is Mnemonic.MOV_LOAD
    store = roundtrip(lambda a: a.store(Reg.RDI, Reg.RAX))
    assert store.mnemonic is Mnemonic.MOV_STORE


def test_load_rejects_rsp_rbp_base():
    with pytest.raises(AssemblerError):
        Asm().load(Reg.RAX, Reg.RSP)
    with pytest.raises(AssemblerError):
        Asm().store(Reg.RBP, Reg.RAX)


def test_arith_roundtrip():
    assert roundtrip(lambda a: a.add_rr(Reg.RAX, Reg.RBX)).mnemonic is Mnemonic.ADD_RR
    assert roundtrip(lambda a: a.sub_ri(Reg.RAX, 5)).imm == 5
    assert roundtrip(lambda a: a.cmp_ri(Reg.RAX, -1)).imm == -1
    big = roundtrip(lambda a: a.add_ri(Reg.RAX, 1 << 20))
    assert big.imm == 1 << 20 and big.length == 7


def test_forward_and_backward_labels():
    a = Asm()
    a.label("top")
    a.mov_ri(Reg.RCX, 3)
    a.label("loop")
    a.dec(Reg.RCX)
    a.jne("loop")
    a.jmp("end")
    a.nop(4)
    a.label("end")
    a.ret()
    code = a.assemble()
    # Walk the code and verify each branch lands on a label.
    insn = decode(code, a.labels["loop"] + 3)  # the jne, after 3-byte dec
    assert insn.mnemonic is Mnemonic.JCC_REL
    branch_off = a.labels["loop"] + 3
    assert branch_off + insn.length + insn.rel == a.labels["loop"]


def test_jmp_forward_resolves():
    a = Asm()
    a.jmp("target")
    a.nop(7)
    a.label("target")
    a.ret()
    code = a.assemble()
    insn = decode(code)
    assert insn.length + insn.rel == a.labels["target"]


def test_call_label():
    a = Asm()
    a.call("fn")
    a.ret()
    a.label("fn")
    a.ret()
    code = a.assemble()
    insn = decode(code)
    assert insn.mnemonic is Mnemonic.CALL_REL
    assert insn.length + insn.rel == a.labels["fn"]


def test_lea_rip_label():
    a = Asm()
    a.lea_rip_label(Reg.RSI, "msg")
    a.ret()
    a.label("msg")
    a.ascii("hi")
    code = a.assemble()
    insn = decode(code)
    assert insn.mnemonic is Mnemonic.LEA_RIP
    assert insn.length + insn.rel == a.labels["msg"]


def test_undefined_label_raises():
    a = Asm()
    a.jmp("nowhere")
    with pytest.raises(AssemblerError):
        a.assemble()


def test_duplicate_label_raises():
    a = Asm()
    a.label("x")
    with pytest.raises(AssemblerError):
        a.label("x")


def test_marks_and_data_spans():
    a = Asm()
    a.nop()
    a.syscall_site("first")
    a.raw(b"\x0f\x05")  # data that *looks* like a syscall
    a.mark("second")
    a.sysenter_()
    code = a.assemble()
    assert a.marks == {"first": 1, "second": 5}
    assert a.data_spans == [(3, 5)]
    assert code[1:3] == b"\x0f\x05"
    assert code[3:5] == b"\x0f\x05"


def test_align():
    a = Asm()
    a.nop()
    a.align(16)
    assert a.offset == 16
    a.syscall_()
    assert a.marks == {}


def test_hostcall_range():
    a = Asm()
    a.hostcall(65535)
    assert decode(a.assemble()).hostcall == 65535
    with pytest.raises(AssemblerError):
        Asm().hostcall(65536)


def test_assemble_idempotent():
    a = Asm()
    a.jmp("end")
    a.label("end")
    a.ret()
    assert a.assemble() == a.assemble()


def test_dq_little_endian():
    a = Asm()
    a.dq(0x050F)
    code = a.assemble()
    assert code[:2] == b"\x0f\x05"  # LE layout creates the hazard pattern
    assert a.data_spans == [(0, 8)]
