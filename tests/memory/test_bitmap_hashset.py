"""Bitmap and robin-hood set tests, including the P4b footprint contrast."""

import pytest

from repro.memory import AddressBitmap, RobinHoodSet
from repro.memory.bitmap import CHUNK_BYTES
from repro.memory.pages import USER_VA_SIZE


class TestAddressBitmap:
    def test_set_and_test(self):
        bm = AddressBitmap()
        assert not bm.test(0x1000)
        bm.set(0x1000)
        assert bm.test(0x1000)
        assert 0x1000 in bm
        assert not bm.test(0x1001)

    def test_clear(self):
        bm = AddressBitmap()
        bm.set(42)
        bm.clear(42)
        assert not bm.test(42)
        assert len(bm) == 0

    def test_idempotent_set(self):
        bm = AddressBitmap()
        bm.set(7)
        bm.set(7)
        assert len(bm) == 1

    def test_out_of_span(self):
        bm = AddressBitmap(span=1 << 20)
        with pytest.raises(ValueError):
            bm.set(1 << 21)
        assert not bm.test(1 << 21)

    def test_reserved_footprint_is_huge(self):
        """P4b: the reservation is span/8 regardless of contents — 16 TiB
        for a 47-bit address space."""
        bm = AddressBitmap()
        assert bm.reserved_virtual_bytes == USER_VA_SIZE // 8
        assert bm.reserved_virtual_bytes == 16 * (1 << 40)

    def test_resident_grows_by_chunk(self):
        bm = AddressBitmap()
        assert bm.resident_bytes == 0
        bm.set(0)
        assert bm.resident_bytes == CHUNK_BYTES
        bm.set(1)  # same chunk
        assert bm.resident_bytes == CHUNK_BYTES
        bm.set(1 << 30)  # far away → second chunk
        assert bm.resident_bytes == 2 * CHUNK_BYTES

    def test_adjacent_addresses_independent(self):
        bm = AddressBitmap()
        base = 0x7F12_3456_7000
        bm.set(base)
        bm.set(base + 2)
        assert bm.test(base) and bm.test(base + 2)
        assert not bm.test(base + 1)


class TestRobinHoodSet:
    def test_add_contains(self):
        s = RobinHoodSet()
        assert s.add(0x7F00_0000_1234)
        assert 0x7F00_0000_1234 in s
        assert 0x7F00_0000_1235 not in s

    def test_duplicate_add(self):
        s = RobinHoodSet()
        assert s.add(5)
        assert not s.add(5)
        assert len(s) == 1

    def test_discard(self):
        s = RobinHoodSet()
        s.add(10)
        assert s.discard(10)
        assert 10 not in s
        assert not s.discard(10)

    def test_grows_under_load(self):
        s = RobinHoodSet(initial_capacity=4)
        values = [i * 0x1000 + 7 for i in range(100)]
        for v in values:
            s.add(v)
        assert len(s) == 100
        assert all(v in s for v in values)
        assert s.capacity >= 200  # max_load 0.5

    def test_discard_preserves_others(self):
        s = RobinHoodSet(initial_capacity=8)
        values = list(range(0, 64, 2))
        for v in values:
            s.add(v)
        for v in values[::2]:
            assert s.discard(v)
        for v in values[1::2]:
            assert v in s
        for v in values[::2]:
            assert v not in s

    def test_iteration(self):
        s = RobinHoodSet()
        for v in (1, 2, 3):
            s.add(v)
        assert sorted(s) == [1, 2, 3]

    def test_probe_accounting(self):
        s = RobinHoodSet()
        s.add(1)
        _ = 1 in s
        _ = 2 in s
        assert s.lookup_count == 2
        assert s.average_probe_length >= 1.0

    def test_robin_hood_bounds_probe_distance(self):
        """Dense clustered keys: robin hood keeps displacement modest."""
        s = RobinHoodSet(initial_capacity=256, max_load=0.9)
        for i in range(200):
            s.add(0x4000_0000 + i * 2)
        assert s.max_probe_distance <= 16

    def test_footprint_is_bounded_by_contents(self):
        """P4b resolution: K23's structure grows with log size, not with the
        address-space size.  Ninety-two redis sites (Table 2) stay tiny."""
        s = RobinHoodSet()
        for i in range(92):
            s.add(0x7F00_0000_0000 + i * 0x40)
        assert s.memory_bytes < 16 * 1024
        bm = AddressBitmap()
        assert s.memory_bytes < bm.reserved_virtual_bytes / 1_000_000

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RobinHoodSet(initial_capacity=0)
