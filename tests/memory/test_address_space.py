"""AddressSpace unit tests: mapping, permissions, PKU, regions, fork."""

import pytest

from repro.errors import MapError, ProtectionKeyFault, SegmentationFault
from repro.memory import PAGE_SIZE, AddressSpace, Prot
from repro.memory.pku import Pkru, xom_pkru_for


@pytest.fixture
def space():
    return AddressSpace()


def test_mmap_returns_page_aligned_base(space):
    base = space.mmap(None, 100, Prot.READ | Prot.WRITE)
    assert base % PAGE_SIZE == 0
    assert space.is_mapped(base, 100)


def test_mmap_rounds_length_to_pages(space):
    base = space.mmap(None, 1, Prot.READ)
    assert space.is_mapped(base, PAGE_SIZE)
    assert not space.is_mapped(base + PAGE_SIZE)


def test_mmap_fixed_at_zero_for_trampoline(space):
    """The trampoline page must be mappable at virtual address 0."""
    base = space.mmap(0, PAGE_SIZE, Prot.READ | Prot.EXEC, name="[trampoline]",
                      fixed=True)
    assert base == 0
    assert space.is_mapped(0)


def test_mmap_rejects_unaligned_fixed(space):
    with pytest.raises(MapError):
        space.mmap(123, PAGE_SIZE, Prot.READ, fixed=True)


def test_mmap_rejects_overlap_without_fixed(space):
    base = space.mmap(None, PAGE_SIZE, Prot.READ)
    with pytest.raises(MapError):
        space.mmap(base, PAGE_SIZE, Prot.READ)


def test_mmap_fixed_replaces_existing(space):
    base = space.mmap(None, PAGE_SIZE, Prot.READ | Prot.WRITE)
    space.write(base, b"before")
    space.mmap(base, PAGE_SIZE, Prot.READ | Prot.WRITE, fixed=True)
    assert space.read(base, 6) == b"\x00" * 6


def test_read_write_roundtrip(space):
    base = space.mmap(None, PAGE_SIZE, Prot.READ | Prot.WRITE)
    space.write(base + 10, b"hello")
    assert space.read(base + 10, 5) == b"hello"


def test_cross_page_read_write(space):
    base = space.mmap(None, 2 * PAGE_SIZE, Prot.READ | Prot.WRITE)
    data = bytes(range(200)) * 3  # 600 bytes spanning the page boundary
    space.write(base + PAGE_SIZE - 100, data)
    assert space.read(base + PAGE_SIZE - 100, len(data)) == data


def test_unmapped_access_faults(space):
    with pytest.raises(SegmentationFault) as exc:
        space.read(0xDEAD000, 1)
    assert exc.value.reason == "unmapped"


def test_write_to_readonly_faults(space):
    base = space.mmap(None, PAGE_SIZE, Prot.READ)
    with pytest.raises(SegmentationFault) as exc:
        space.write(base, b"x")
    assert exc.value.reason == "permission"
    assert exc.value.access == "write"


def test_fetch_requires_exec(space):
    base = space.mmap(None, PAGE_SIZE, Prot.READ | Prot.WRITE)
    with pytest.raises(SegmentationFault):
        space.fetch(base, 2)
    space.mprotect(base, PAGE_SIZE, Prot.READ | Prot.EXEC)
    assert space.fetch(base, 2) == b"\x00\x00"


def test_null_page_unmapped_by_default(space):
    """The invariant many mechanisms rely on (Section 4.4): without a
    trampoline, any NULL access faults."""
    for access in ("read", "write", "exec"):
        with pytest.raises(SegmentationFault):
            if access == "read":
                space.read(0, 1)
            elif access == "write":
                space.write(0, b"x")
            else:
                space.fetch(0, 1)


def test_munmap_removes_pages_and_region(space):
    base = space.mmap(None, 2 * PAGE_SIZE, Prot.READ, name="lib.so")
    space.munmap(base, PAGE_SIZE)
    assert not space.is_mapped(base)
    assert space.is_mapped(base + PAGE_SIZE)
    region = space.region_at(base + PAGE_SIZE)
    assert region is not None and region.name == "lib.so"
    assert space.region_at(base) is None


def test_mprotect_unmapped_raises(space):
    with pytest.raises(MapError):
        space.mprotect(0x5000, PAGE_SIZE, Prot.READ)


def test_region_offsets_survive_rebase():
    """(region, offset) pairs are the offline log currency: the same library
    mapped at two ASLR bases yields the same offsets."""
    a, b = AddressSpace(), AddressSpace()
    base_a = a.mmap(0x10000, PAGE_SIZE, Prot.READ | Prot.EXEC,
                    name="libc.so.6", fixed=True)
    base_b = b.mmap(0x7F0000, PAGE_SIZE, Prot.READ | Prot.EXEC,
                    name="libc.so.6", fixed=True)
    target_a = base_a + 0x123
    target_b = base_b + 0x123
    ra, rb = a.region_at(target_a), b.region_at(target_b)
    assert (ra.name, target_a - ra.start) == (rb.name, target_b - rb.start)


def test_maps_rendering(space):
    base = space.mmap(None, PAGE_SIZE, Prot.READ | Prot.EXEC, name="/bin/app")
    lines = space.maps()
    assert any("/bin/app" in line and "r-xp" in line for line in lines)
    assert any(f"{base:012x}" in line for line in lines)


# ---------------------------------------------------------------------- PKU


def test_pku_blocks_data_access_not_exec(space):
    """The XOM asymmetry behind P4a: data faults, execution proceeds."""
    base = space.mmap(0, PAGE_SIZE, Prot.READ | Prot.EXEC, name="[trampoline]",
                      fixed=True)
    space.write_kernel(base, b"\x90\x90")
    space.pkey_mprotect(base, PAGE_SIZE, Prot.READ | Prot.EXEC, pkey=1)
    pkru = xom_pkru_for(1)
    with pytest.raises(ProtectionKeyFault):
        space.read(base, 1, pkru=pkru)
    # Writes fault too (page permissions deny W before PKU is consulted,
    # exactly as on hardware where the trampoline is mapped r-x).
    with pytest.raises(SegmentationFault):
        space.write(base, b"x", pkru=pkru)
    # Instruction fetch is NOT blocked by PKU.
    assert space.fetch(base, 2) == b"\x90\x90"


def test_pku_write_disable_only():
    pkru = Pkru()
    pkru.set_write_disabled(2, True)
    assert pkru.permits(2, "read")
    assert not pkru.permits(2, "write")
    assert pkru.permits(2, "exec")


def test_pku_default_key_always_allows(space):
    base = space.mmap(None, PAGE_SIZE, Prot.READ | Prot.WRITE)
    pkru = xom_pkru_for(1)  # key 1 locked; key 0 (default) open
    space.write(base, b"ok", pkru=pkru)
    assert space.read(base, 2, pkru=pkru) == b"ok"


def test_pkey_mprotect_validates_key(space):
    base = space.mmap(None, PAGE_SIZE, Prot.READ)
    with pytest.raises(MapError):
        space.pkey_mprotect(base, PAGE_SIZE, Prot.READ, pkey=16)


def test_kernel_access_bypasses_protections(space):
    """ptrace POKETEXT / process_vm_writev write through page protections."""
    base = space.mmap(None, PAGE_SIZE, Prot.READ | Prot.EXEC)
    space.write_kernel(base, b"\x0f\x05")
    assert space.read_kernel(base, 2) == b"\x0f\x05"


# ---------------------------------------------------------------------- fork


def test_fork_copy_is_independent(space):
    base = space.mmap(None, PAGE_SIZE, Prot.READ | Prot.WRITE, name="heap")
    space.write(base, b"parent")
    child = space.fork_copy()
    child.write(base, b"child!")
    assert space.read(base, 6) == b"parent"
    assert child.read(base, 6) == b"child!"
    assert [r.name for r in child.regions] == [r.name for r in space.regions]


def test_mapped_bytes_accounting(space):
    assert space.mapped_bytes == 0
    space.mmap(None, 3 * PAGE_SIZE, Prot.READ)
    assert space.mapped_bytes == 3 * PAGE_SIZE
