"""Two-level validity table tests (the P4b alternative strategy)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.memory import AddressBitmap, TwoLevelTable
from repro.memory.twolevel import LEAF_BYTES, LEAF_SPAN


def test_set_test_clear():
    table = TwoLevelTable()
    table.set(0x7F00_1234)
    assert table.test(0x7F00_1234)
    assert not table.test(0x7F00_1235)
    table.clear(0x7F00_1234)
    assert not table.test(0x7F00_1234)
    assert len(table) == 0


def test_out_of_span():
    table = TwoLevelTable(span=1 << 20)
    with pytest.raises(ValueError):
        table.set(1 << 21)
    assert not table.test(1 << 21)


def test_directory_reservation_is_tiny_vs_flat_bitmap():
    table = TwoLevelTable()
    bitmap = AddressBitmap()
    assert table.reserved_virtual_bytes < bitmap.reserved_virtual_bytes / 100_000
    assert table.reserved_virtual_bytes == 32 * (1 << 20)  # 32 MiB


def test_resident_grows_per_leaf():
    table = TwoLevelTable()
    base = table.reserved_virtual_bytes
    table.set(0)
    assert table.resident_bytes == base + LEAF_BYTES
    table.set(LEAF_SPAN - 1)       # same leaf
    assert table.resident_bytes == base + LEAF_BYTES
    table.set(10 * LEAF_SPAN)      # new leaf
    assert table.resident_bytes == base + 2 * LEAF_BYTES


@given(st.lists(st.tuples(st.sampled_from(["set", "clear", "test"]),
                          st.integers(min_value=0,
                                      max_value=(1 << 40) - 1)),
                max_size=120))
@settings(max_examples=100)
def test_against_model(ops):
    table = TwoLevelTable()
    model = set()
    for op, address in ops:
        if op == "set":
            table.set(address)
            model.add(address)
        elif op == "clear":
            table.clear(address)
            model.discard(address)
        else:
            assert table.test(address) == (address in model)
    assert len(table) == len(model)


def test_agrees_with_flat_bitmap():
    table = TwoLevelTable()
    bitmap = AddressBitmap()
    sites = [0x5555_0000 + i * 0x39 for i in range(64)]
    for site in sites:
        table.set(site)
        bitmap.set(site)
    for probe in range(0x5555_0000, 0x5555_0000 + 64 * 0x39):
        assert table.test(probe) == bitmap.test(probe)
