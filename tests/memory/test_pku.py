"""PKRU register semantics (the hardware rules XOM rests on)."""

import pytest

from repro.memory.pku import PKEY_COUNT, Pkru, xom_pkru_for


def test_default_permits_everything():
    pkru = Pkru()
    for key in range(PKEY_COUNT):
        for access in ("read", "write", "exec"):
            assert pkru.permits(key, access)


def test_access_disable_blocks_reads_and_writes():
    pkru = Pkru()
    pkru.set_access_disabled(3, True)
    assert not pkru.permits(3, "read")
    assert not pkru.permits(3, "write")
    assert pkru.permits(3, "exec")  # PKU never gates instruction fetch
    assert pkru.permits(2, "read")  # other keys untouched


def test_write_disable_blocks_writes_only():
    pkru = Pkru()
    pkru.set_write_disabled(5, True)
    assert pkru.permits(5, "read")
    assert not pkru.permits(5, "write")


def test_bits_clear_again():
    pkru = Pkru()
    pkru.set_access_disabled(1, True)
    pkru.set_access_disabled(1, False)
    assert pkru.permits(1, "read")


def test_bit_layout_matches_hardware():
    """Key k owns bits 2k (AD) and 2k+1 (WD)."""
    pkru = Pkru()
    pkru.set_access_disabled(0, True)
    assert pkru.value == 0b01
    pkru.set_write_disabled(0, True)
    assert pkru.value == 0b11
    pkru = Pkru()
    pkru.set_write_disabled(15, True)
    assert pkru.value == 1 << 31


def test_xom_helper_locks_exactly_one_key():
    pkru = xom_pkru_for(7)
    assert not pkru.permits(7, "read")
    assert not pkru.permits(7, "write")
    assert pkru.permits(7, "exec")
    for key in range(PKEY_COUNT):
        if key != 7:
            assert pkru.permits(key, "read")


def test_copy_is_independent():
    pkru = xom_pkru_for(1)
    clone = pkru.copy()
    clone.set_access_disabled(1, False)
    assert not pkru.permits(1, "read")
    assert clone.permits(1, "read")


def test_value_masked_to_32_bits():
    pkru = Pkru(1 << 40 | 0b10)
    assert pkru.value == 0b10
