"""Single-page fast path in :class:`AddressSpace`: equivalence and
generation-based invalidation.

The fast path memoizes (generation, page, prot, pkey) per page index and
serves any access that stays inside one page; everything else — and every
*fault* — falls through to the original ``_check`` + copy path.  These
tests pin the contract: identical bytes, identical exception types and
fields, and correct invalidation after every mapping mutation
(``mprotect``/``pkey_mprotect``/``munmap``/``mmap``).
"""

import pytest

from repro.errors import ProtectionKeyFault, SegmentationFault
from repro.memory import PAGE_SIZE, Pkru, Prot
from repro.memory.address_space import AddressSpace

BASE = 0x40_0000


def make_space(prot=Prot.READ | Prot.WRITE, pages=4) -> AddressSpace:
    space = AddressSpace()
    space.mmap(BASE, pages * PAGE_SIZE, prot, name="t", fixed=True)
    return space


# ------------------------------------------------------------- equivalence


def test_in_page_read_write_roundtrip():
    space = make_space()
    payload = bytes(range(64))
    space.write(BASE + 100, payload)
    assert space.read(BASE + 100, 64) == payload
    # Repeat (now served from the memoized entry) — identical.
    assert space.read(BASE + 100, 64) == payload


def test_cross_page_access_uses_slow_path_and_matches():
    space = make_space()
    straddle = BASE + PAGE_SIZE - 3
    payload = b"ABCDEFGH"                 # 3 bytes in page 0, 5 in page 1
    space.write(straddle, payload)
    assert space.read(straddle, 8) == payload
    # The same bytes are visible through two in-page (fast) reads.
    assert space.read(straddle, 3) + space.read(straddle + 3, 5) == payload


def test_fast_write_is_visible_to_kernel_copies():
    # The fast path mutates the page bytearray in place; the slow copy
    # paths must observe it (shared identity, not a snapshot).
    space = make_space()
    space.write(BASE + 8, b"\x5a" * 8)
    assert space.read_kernel(BASE + 8, 8) == b"\x5a" * 8
    space.write_kernel(BASE + 16, b"\xa5" * 8)
    assert space.read(BASE + 16, 8) == b"\xa5" * 8


def test_fetch_requires_exec_and_ignores_pku():
    space = make_space(prot=Prot.READ | Prot.EXEC)
    space.write_kernel(BASE, b"\x90" * 16)
    pkru = Pkru()
    pkru.set_access_disabled(3, True)
    space.pkey_mprotect(BASE, PAGE_SIZE, Prot.READ | Prot.EXEC, pkey=3)
    # Data reads through key 3 fault; instruction fetch does not (XOM).
    with pytest.raises(ProtectionKeyFault):
        space.read(BASE, 4, pkru=pkru)
    assert space.fetch(BASE, 4) == b"\x90" * 4


# ------------------------------------------------------------ fault parity


def test_unmapped_fault_fields_match_slow_path():
    space = make_space()
    for length in (1, 8, PAGE_SIZE + 8):     # fast-sized and straddling
        with pytest.raises(SegmentationFault) as err:
            space.read(0x9999_0000, length)
        assert err.value.address == 0x9999_0000
        assert err.value.access == "read"
        assert err.value.reason == "unmapped"


def test_permission_fault_fields_match_slow_path():
    space = make_space(prot=Prot.READ)
    with pytest.raises(SegmentationFault) as err:
        space.write(BASE + 5, b"x")
    assert err.value.access == "write"
    assert err.value.reason == "permission"
    with pytest.raises(SegmentationFault) as err:
        space.fetch(BASE, 1)
    assert err.value.access == "exec"
    assert err.value.reason == "permission"


def test_pkey_fault_raised_for_in_page_access():
    space = make_space()
    space.pkey_mprotect(BASE, PAGE_SIZE, Prot.READ | Prot.WRITE, pkey=5)
    pkru = Pkru()
    pkru.set_write_disabled(5, True)
    assert space.read(BASE, 8, pkru=pkru) == b"\x00" * 8   # reads still OK
    with pytest.raises(ProtectionKeyFault) as err:
        space.write(BASE, b"x", pkru=pkru)
    assert err.value.access == "write"
    assert err.value.reason == "pkey"


# ----------------------------------------------------------- invalidation


def test_mprotect_invalidates_memoized_entry():
    space = make_space()
    assert space.read(BASE, 8) == b"\x00" * 8        # memoize page 0
    space.mprotect(BASE, PAGE_SIZE, Prot.NONE)
    with pytest.raises(SegmentationFault):
        space.read(BASE, 8)
    space.mprotect(BASE, PAGE_SIZE, Prot.READ)
    assert space.read(BASE, 8) == b"\x00" * 8


def test_pkey_mprotect_invalidates_memoized_entry():
    space = make_space()
    pkru = Pkru()
    pkru.set_access_disabled(7, True)
    assert space.read(BASE, 8, pkru=pkru) == b"\x00" * 8   # memoized, key 0
    space.pkey_mprotect(BASE, PAGE_SIZE, Prot.READ | Prot.WRITE, pkey=7)
    with pytest.raises(ProtectionKeyFault):
        space.read(BASE, 8, pkru=pkru)


def test_munmap_invalidates_memoized_entry():
    space = make_space()
    space.write(BASE + PAGE_SIZE, b"live")           # memoize page 1
    space.munmap(BASE + PAGE_SIZE, PAGE_SIZE)
    with pytest.raises(SegmentationFault) as err:
        space.read(BASE + PAGE_SIZE, 4)
    assert err.value.reason == "unmapped"
    # Neighbouring pages are untouched.
    assert space.read(BASE, 4) == b"\x00" * 4
    assert space.read(BASE + 2 * PAGE_SIZE, 4) == b"\x00" * 4


def test_remap_after_munmap_serves_fresh_page():
    space = make_space()
    space.write(BASE, b"old!")
    space.munmap(BASE, PAGE_SIZE)
    space.mmap(BASE, PAGE_SIZE, Prot.READ | Prot.WRITE, name="new",
               fixed=True)
    assert space.read(BASE, 4) == b"\x00\x00\x00\x00"


def test_fork_copy_does_not_share_fast_entries():
    parent = make_space()
    parent.write(BASE, b"parent!!")                  # memoize in parent
    child = parent.fork_copy()
    child.write(BASE, b"child!!!")
    assert parent.read(BASE, 8) == b"parent!!"
    assert child.read(BASE, 8) == b"child!!!"


def test_fork_copy_resets_generation_state():
    # The child must start with its *own* fast-path generation state —
    # fresh dicts, not aliases of the parent's — or a post-fork unshare
    # on one side silently corrupts the other's memoized translations.
    parent = make_space()
    parent.write(BASE, b"warmmmm!")                  # warm parent _fast
    child = parent.fork_copy()
    assert child._fast is not parent._fast
    assert child._page_gen is not parent._page_gen
    assert child._frozen is not parent._frozen
    assert not child._fast                           # fresh, not copied
    # Fork froze the parent: its warmed entries were all invalidated.
    assert not parent._fast


def test_fork_then_smc_isolated_in_both_directions():
    # The fork-then-SMC pitfall: both sides warm their single-page fast
    # entries on a shared RWX code page, then each side patches its own
    # copy.  Neither patch may leak — a stale generation entry on either
    # side would serve the other side's bytes to the instruction fetch.
    parent = make_space(prot=Prot.READ | Prot.WRITE | Prot.EXEC)
    code = b"\x90" * 16                              # NOP sled
    parent.write(BASE, code)
    assert parent.fetch(BASE, 16) == code            # warm parent entry
    child = parent.fork_copy()
    assert child.fetch(BASE, 16) == code             # warm child entry

    parent.write(BASE, b"\xcc" + code[1:])           # parent patches [0]
    assert parent.fetch(BASE, 16) == b"\xcc" + code[1:]
    assert child.fetch(BASE, 16) == code             # child unaffected

    child.write(BASE + 8, b"\xf4")                   # child patches [8]
    expect_child = code[:8] + b"\xf4" + code[9:]
    assert child.fetch(BASE, 16) == expect_child
    # Parent still sees only its own patch — not the child's.
    assert parent.fetch(BASE, 16) == b"\xcc" + code[1:]
    # And the underlying page bytearrays really did unshare.
    assert parent._pages[BASE // PAGE_SIZE] is not \
        child._pages[BASE // PAGE_SIZE]


def test_fork_then_smc_after_restore_roundtrip():
    # Snapshot/restore interleaved with fork: restoring the parent to a
    # pre-patch snapshot must not resurrect shared pages the child has
    # since written through.
    parent = make_space(prot=Prot.READ | Prot.WRITE | Prot.EXEC)
    code = b"\x90" * 8
    parent.write(BASE, code)
    snap = parent.snapshot()
    child = parent.fork_copy()
    child.write(BASE, b"\xcc" * 8)
    parent.write(BASE, b"\xf4" * 8)
    parent.restore(snap)
    assert parent.fetch(BASE, 8) == code
    assert child.fetch(BASE, 8) == b"\xcc" * 8
    # Post-restore writes stay private to the parent.
    parent.write(BASE, b"\x0f" * 8)
    assert child.fetch(BASE, 8) == b"\xcc" * 8


# ------------------------------------------------------------- region_at


def test_region_at_bisect_with_gaps():
    space = AddressSpace()
    starts = [0x10_0000, 0x30_0000, 0x50_0000]
    for start in starts:
        space.mmap(start, PAGE_SIZE, Prot.READ, name=f"r{start:#x}",
                   fixed=True)
    for start in starts:
        assert space.region_at(start).start == start
        assert space.region_at(start + PAGE_SIZE - 1).start == start
        assert space.region_at(start + PAGE_SIZE) is None   # gap after
    assert space.region_at(0) is None
    assert space.region_at(0x20_0000) is None                # gap between
    assert space.region_at(0xFFFF_FFFF_0000) is None         # past the end


def test_region_at_after_unmap_and_split():
    space = AddressSpace()
    space.mmap(BASE, 4 * PAGE_SIZE, Prot.READ | Prot.WRITE, name="big",
               fixed=True)
    # Punch a hole in the middle; region_at must track the split index.
    space.munmap(BASE + PAGE_SIZE, PAGE_SIZE)
    assert space.region_at(BASE) is not None
    assert space.region_at(BASE + PAGE_SIZE) is None
    assert space.region_at(BASE + 2 * PAGE_SIZE) is not None
