"""Signal machinery tests: simulated-address handlers + rt_sigreturn, the
host-handler frame protocol, and default dispositions."""

import pytest

from repro.arch.registers import Reg
from repro.errors import ProcessKilled
from repro.kernel import Kernel
from repro.kernel.signals import SignalContext, SignalDispositions, default_action
from repro.kernel.syscalls import Nr, SIGCHLD, SIGSEGV, SIGTERM
from repro.workloads.programs import ProgramBuilder, data_ref
from tests.simutil import spawn_and_run


class TestDispositions:
    def test_set_get_clear(self):
        table = SignalDispositions()
        table.set_action(SIGSEGV, 0x1000)
        assert table.get_action(SIGSEGV) == 0x1000
        table.set_action(SIGSEGV, None)
        assert table.get_action(SIGSEGV) is None

    def test_copy_is_independent(self):
        table = SignalDispositions()
        table.set_action(SIGTERM, 0x2000)
        clone = table.copy()
        clone.set_action(SIGTERM, None)
        assert table.get_action(SIGTERM) == 0x2000

    def test_default_actions(self):
        with pytest.raises(ProcessKilled) as exc:
            default_action(SIGSEGV)
        assert exc.value.signal == SIGSEGV
        default_action(SIGCHLD)  # ignored, no raise


class TestSimulatedHandlers:
    def test_app_handler_runs_and_sigreturn_resumes(self, kernel):
        """A simulated-code SIGSEGV handler registered via rt_sigaction:
        the kernel pushes a frame, the handler runs app instructions,
        rt_sigreturn restores the (patched) context."""
        builder = ProgramBuilder("/bin/sighandler")
        builder.string("msg", "handled\n")
        builder.start()
        asm = builder.asm
        # rt_sigaction(SIGSEGV, handler_address, ...)
        asm.lea_rip_label(Reg.RSI, "handler")
        builder.libc("rt_sigaction", SIGSEGV, Reg.RSI, 0, 8)
        # Fault: load from NULL.
        asm.xor_rr(Reg.RBX, Reg.RBX)
        asm.mark("fault_site")
        asm.load(Reg.RAX, Reg.RBX)
        # The handler patches the saved RIP to land here:
        builder.label("recovered")
        builder.libc("write", 1, data_ref("msg"), 8)
        builder.exit(0)
        # Handler (simulated code): fix the frame and sigreturn.  Our frame
        # model restores the *saved* context, so redirect by rewriting the
        # frame is host-side; the simulated handler here simply jumps to
        # the recovery label directly after discarding the frame.
        builder.label("handler")
        asm.endbr64()
        # The __restore_rt idiom: an inlined rt_sigreturn (libc does not
        # export a wrapper for it).
        builder.direct_syscall(Nr.rt_sigreturn, mark="restore_rt")
        builder.register(kernel)
        process = kernel.spawn_process("/bin/sighandler")
        kernel.run_process(process, max_steps=100_000)
        # Frame semantics: RIP advances before execution, so the saved
        # context already points past the faulting load; rt_sigreturn
        # resumes at `recovered` and the program completes.
        assert process.exited and process.exit_status == 0
        assert bytes(process.output) == b"handled\n"
        assert process.main_thread.signal_frames == []  # frame popped

    def test_app_handler_with_host_frame_fixup(self, kernel):
        """The productive pattern: a host SIGSEGV handler fixes the saved
        RIP (SignalContext.set_resume_rip) so execution recovers."""
        builder = ProgramBuilder("/bin/recover")
        builder.string("msg", "recovered\n")
        builder.start()
        asm = builder.asm
        asm.xor_rr(Reg.RBX, Reg.RBX)
        asm.load(Reg.RAX, Reg.RBX)  # faults
        builder.label("after_fault")
        builder.libc("write", 1, data_ref("msg"), 10)
        builder.exit(0)
        builder.register(kernel)
        process = kernel.spawn_process("/bin/recover")
        base, image, _ns = process.loaded_images["/bin/recover"]
        recovery = base + image.symbol("after_fault")

        def handler(sigctx: SignalContext) -> None:
            sigctx.set_resume_rip(recovery)

        process.dispositions.set_action(SIGSEGV, handler)
        kernel.run_process(process)
        assert process.exit_status == 0
        assert bytes(process.output) == b"recovered\n"

    def test_fault_info_reaches_handler(self, kernel):
        builder = ProgramBuilder("/bin/faultinfo")
        builder.start()
        asm = builder.asm
        asm.mov_ri(Reg.RBX, 0xDEAD000)
        asm.load(Reg.RAX, Reg.RBX)
        builder.exit(0)
        builder.register(kernel)
        process = kernel.spawn_process("/bin/faultinfo")
        seen = {}

        def handler(sigctx: SignalContext) -> None:
            seen.update(sigctx.info)
            base, image, _ns = process.loaded_images["/bin/faultinfo"]
            sigctx.set_resume_rip(base + image.symbol("_start"))
            # Avoid refaulting forever: neuter the pointer.
            sigctx.saved["regs"][Reg.RBX] = 0xDEAD000
            sigctx.set_resume_rip(sigctx.saved["rip"])  # skip the load
            process.dispositions.set_action(SIGSEGV, None)

        process.dispositions.set_action(SIGSEGV, handler)
        kernel.run_process(process, max_steps=50_000)
        assert seen.get("addr") == 0xDEAD000
        assert seen.get("access") == "read"
        assert seen.get("reason") == "unmapped"

    def test_set_return_value_updates_saved_rax(self):
        from repro.cpu.state import CpuContext

        ctx = CpuContext()
        sigctx = SignalContext(31, None, ctx.save(), 0)
        sigctx.set_return_value(-38)
        assert sigctx.saved["regs"][Reg.RAX] == (-38) & (1 << 64) - 1
