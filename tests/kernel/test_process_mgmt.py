"""fork / execve / wait4 / signals / kill semantics."""

import pytest

from repro.kernel import Kernel
from repro.kernel.syscalls import Nr, SIGSEGV
from repro.workloads.programs import ProgramBuilder, RESULT, data_ref
from tests.simutil import make_hello, spawn_and_run


def fork_program(kernel):
    """Parent forks; child writes 'C' and exits 7; parent waits, writes 'P'."""
    builder = ProgramBuilder("/bin/fork1")
    builder.string("c", "C")
    builder.string("p", "P")
    builder.start()
    builder.libc("fork")
    from repro.arch.registers import Reg

    builder.asm.test_rr(Reg.RAX, Reg.RAX)
    builder.asm.jne("parent")
    builder.libc("write", 1, data_ref("c"), 1)
    builder.exit(7)
    builder.label("parent")
    builder.libc("wait4", 0, 0, 0, 0)
    builder.libc("write", 1, data_ref("p"), 1)
    builder.exit(0)
    builder.register(kernel)


def test_fork_creates_child_and_wait_reaps(kernel):
    fork_program(kernel)
    parent = kernel.spawn_process("/bin/fork1")
    kernel.run()
    assert parent.exited and parent.exit_status == 0
    assert bytes(parent.output) == b"P"
    children = [p for p in kernel.processes.values() if p.parent is parent]
    assert len(children) == 1
    child = children[0]
    assert child.exited and child.exit_status == 7
    assert bytes(child.output) == b"C"


def test_fork_copies_address_space(kernel):
    fork_program(kernel)
    parent = kernel.spawn_process("/bin/fork1")
    kernel.run()
    child = next(p for p in kernel.processes.values() if p.parent is parent)
    assert child.address_space is not parent.address_space


def execve_program(kernel, empty_env: bool):
    """A program that execs /usr/bin/hello, optionally with an empty
    environment (the Listing 1 / P1a pattern)."""
    make_hello().register(kernel)
    builder = ProgramBuilder("/bin/execer")
    builder.string("target", "/usr/bin/hello")
    builder.string("arg0", "/usr/bin/hello")
    builder.string("env0", "LD_PRELOAD=/opt/libfake.so")
    builder.words("argv", [0, 0])   # patched below via lea trick
    builder.words("envp", [0, 0])
    builder.start()
    from repro.arch.registers import Reg

    asm = builder.asm
    # argv[0] = &arg0; argv[1] = NULL
    asm.lea_rip_label(Reg.RBX, "argv")
    asm.lea_rip_label(Reg.RAX, "arg0")
    asm.store(Reg.RBX, Reg.RAX)
    if not empty_env:
        asm.lea_rip_label(Reg.RBX, "envp")
        asm.lea_rip_label(Reg.RAX, "env0")
        asm.store(Reg.RBX, Reg.RAX)
    builder.libc("execve", data_ref("target"), data_ref("argv"),
                 data_ref("envp"))
    builder.exit(111)  # reached only if execve failed
    builder.register(kernel)


def test_execve_replaces_image(kernel):
    execve_program(kernel, empty_env=True)
    process = spawn_and_run(kernel, "/bin/execer")
    assert process.exited and process.exit_status == 0
    assert bytes(process.output) == b"hello\n"
    assert process.path == "/usr/bin/hello"


def test_execve_with_empty_env_clears_environment(kernel):
    """Listing 1: an empty envp really does wipe LD_PRELOAD (P1a)."""
    execve_program(kernel, empty_env=True)
    process = spawn_and_run(kernel, "/bin/execer",
                            env={"LD_PRELOAD": "/opt/libfake.so"})
    assert process.env == {}


def test_execve_env_passes_through(kernel):
    kernel.vfs.create("/opt/libfake.so", b"")  # unused, path only
    execve_program(kernel, empty_env=False)
    process = spawn_and_run(kernel, "/bin/execer")
    # The env the exec'ing code provided survives into the new image...
    assert process.env.get("LD_PRELOAD") == "/opt/libfake.so"


def test_execve_missing_target_returns_enoent(kernel):
    builder = ProgramBuilder("/bin/execbad")
    builder.string("target", "/no/such/bin")
    builder.start()
    builder.libc("execve", data_ref("target"), 0, 0)
    builder.exit(42)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/execbad")
    assert process.exit_status == 42  # fell through to exit


def test_segfault_kills_process(kernel):
    builder = ProgramBuilder("/bin/crash1")
    builder.start()
    from repro.arch.registers import Reg

    builder.asm.mov_ri(Reg.RDI, 0)  # NULL
    builder.asm.load(Reg.RAX, Reg.RDI)
    builder.exit(0)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/crash1")
    assert process.exited
    assert process.exit_status == 128 + SIGSEGV


def test_null_jump_faults_natively(kernel):
    """Without any trampoline at 0, a NULL code pointer crashes (the
    baseline behaviour pitfall P4a destroys)."""
    builder = ProgramBuilder("/bin/crash2")
    builder.start()
    from repro.arch.registers import Reg

    builder.asm.xor_rr(Reg.RAX, Reg.RAX)
    builder.asm.jmp_reg(Reg.RAX)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/crash2")
    assert process.exit_status == 128 + SIGSEGV


def test_kill_terminates_target(kernel):
    make_hello().register(kernel)
    victim = kernel.spawn_process("/usr/bin/hello")
    builder = ProgramBuilder("/bin/killer")
    builder.start()
    builder.libc("kill", victim.pid, 9)
    builder.exit(0)
    builder.register(kernel)
    killer = kernel.spawn_process("/bin/killer")
    # Run only the killer (victim never scheduled).
    kernel.run_process(killer)
    assert victim.exited
