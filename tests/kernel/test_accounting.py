"""Ground-truth accounting tests: SyscallRecord origins are the evidence
base for every exhaustiveness claim, so their semantics get pinned here."""

import pytest

from repro.interposers import SudInterposer, ZpolineInterposer
from repro.kernel import Kernel
from repro.kernel.kernel import SyscallRecord
from repro.kernel.syscalls import Nr
from tests.simutil import make_hello, spawn_and_run


class TestSyscallRecord:
    def test_app_origin_is_requested_and_uninterposed(self):
        record = SyscallRecord(1, int(Nr.write), 0x1000, "app")
        assert record.app_requested and not record.interposed

    @pytest.mark.parametrize("origin", ["ptrace", "sud-handler",
                                        "rewrite-handler"])
    def test_interposed_origins(self, origin):
        record = SyscallRecord(1, int(Nr.write), 0x1000, origin)
        assert record.app_requested and record.interposed

    def test_internal_origin_not_app_requested(self):
        record = SyscallRecord(1, int(Nr.openat), 0, "interposer-internal")
        assert not record.app_requested


class TestLogConsistency:
    def test_native_run_is_all_app_origin(self, kernel):
        make_hello().register(kernel)
        process = spawn_and_run(kernel, "/usr/bin/hello")
        records = [r for r in kernel.syscall_log if r.pid == process.pid]
        assert records
        assert all(r.origin == "app" for r in records)

    def test_sud_run_splits_trap_and_handler(self, kernel):
        make_hello().register(kernel)
        SudInterposer(kernel).install()
        process = spawn_and_run(kernel, "/usr/bin/hello")
        origins = {r.origin for r in kernel.syscall_log
                   if r.pid == process.pid}
        assert "sud-handler" in origins   # main-phase, via the handler
        assert "app" in origins           # pre-main loader storm
        assert "rewrite-handler" not in origins

    def test_rewrite_run_uses_rewrite_origin(self, kernel):
        make_hello().register(kernel)
        ZpolineInterposer(kernel).install()
        process = spawn_and_run(kernel, "/usr/bin/hello")
        main_phase = [r for r in kernel.syscall_log
                      if r.pid == process.pid and r.nr == Nr.write]
        assert [r.origin for r in main_phase] == ["rewrite-handler"]

    def test_sites_recorded_for_trap_paths(self, kernel):
        make_hello().register(kernel)
        process = spawn_and_run(kernel, "/usr/bin/hello")
        for record in kernel.app_requested_syscalls(process.pid):
            assert record.site != 0
            raw = process.address_space.read_kernel(record.site, 2)
            assert raw in (b"\x0f\x05", b"\x0f\x34")

    def test_uninterposed_filter_scoped_by_pid(self, kernel):
        make_hello().register(kernel)
        first = spawn_and_run(kernel, "/usr/bin/hello")
        second = spawn_and_run(kernel, "/usr/bin/hello")
        all_missed = kernel.uninterposed_syscalls()
        first_missed = kernel.uninterposed_syscalls(first.pid)
        second_missed = kernel.uninterposed_syscalls(second.pid)
        assert len(all_missed) == len(first_missed) + len(second_missed)

    def test_handler_counts_match_kernel_counts(self, kernel):
        """The interposer's own ledger and the kernel's ground truth must
        agree on what was interposed."""
        make_hello().register(kernel)
        interposer = ZpolineInterposer(kernel).install()
        process = spawn_and_run(kernel, "/usr/bin/hello")
        kernel_view = [r for r in kernel.syscall_log
                       if r.pid == process.pid
                       and r.origin == "rewrite-handler"]
        assert len(kernel_view) == interposer.handled_count(process.pid)
