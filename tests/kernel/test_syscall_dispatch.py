"""End-to-end syscall tests through real simulated programs."""

import pytest

from repro.kernel import Kernel
from repro.kernel.syscalls import Errno, Nr
from repro.workloads.programs import ProgramBuilder, RESULT, data_ref
from tests.simutil import make_hello, spawn_and_run, syscall_names


def test_hello_world(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    assert process.exited and process.exit_status == 0
    assert bytes(process.output) == b"hello\n"


def test_syscall_ground_truth_logged(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    names = syscall_names(kernel, process.pid)
    assert "write" in names and "exit" in names


def test_unknown_syscall_returns_enosys(kernel):
    builder = ProgramBuilder("/bin/stress1")
    builder.buffer("out", 8)
    builder.start()
    # syscall(500) via the generic libc shim — the paper's microbench call.
    builder.libc("syscall", 500)
    builder.exit(0)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/stress1")
    assert process.exit_status == 0
    records = [r for r in kernel.app_requested_syscalls(process.pid)
               if r.nr == 500]
    assert len(records) == 1


def test_file_io_roundtrip(kernel):
    kernel.vfs.create("/data/in.txt", b"abcdef")
    builder = ProgramBuilder("/bin/cp1")
    builder.string("path", "/data/in.txt")
    builder.buffer("buf", 64)
    builder.start()
    builder.libc("openat", (1 << 64) - 100, data_ref("path"), 0)
    builder.libc("read", RESULT, data_ref("buf"), 6)
    builder.libc("write", 1, data_ref("buf"), 6)
    builder.exit(0)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/cp1")
    assert bytes(process.output) == b"abcdef"


def test_open_creates_file(kernel):
    builder = ProgramBuilder("/bin/touch1")
    builder.string("path", "/tmp/new.txt")
    builder.start()
    builder.libc("openat", (1 << 64) - 100, data_ref("path"), 0o100)  # O_CREAT
    builder.libc("close", RESULT)
    builder.exit(0)
    builder.register(kernel)
    spawn_and_run(kernel, "/bin/touch1")
    assert kernel.vfs.exists("/tmp/new.txt")


def test_getpid_returns_pid(kernel):
    builder = ProgramBuilder("/bin/pid1")
    builder.start()
    builder.libc("getpid")
    # exit(pid) so the test can observe the return value.
    builder.libc("exit", RESULT)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/pid1")
    assert process.exit_status == process.pid & 0xFF


def test_getcwd(kernel):
    builder = ProgramBuilder("/bin/pwd1")
    builder.buffer("buf", 64)
    builder.start()
    builder.libc("getcwd", data_ref("buf"), 64)
    builder.libc("write", 1, data_ref("buf"), RESULT)
    builder.exit(0)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/pwd1")
    assert bytes(process.output) == b"/\x00"


def test_brk_grows_heap(kernel):
    builder = ProgramBuilder("/bin/brk1")
    builder.start()
    builder.direct_syscall(Nr.brk, 0)
    builder.exit(0)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/brk1")
    assert any(r.name == "[heap]"
               for r in process.address_space.regions)


def _clock_program(kernel, path="/bin/clock1"):
    builder = ProgramBuilder(path)
    builder.buffer("ts", 16)
    builder.start()
    builder.libc("clock_gettime", 0, data_ref("ts"))
    builder.exit(0)
    builder.register(kernel)


def test_clock_gettime_uses_vdso_when_present(kernel):
    """The vDSO fast path completes with no syscall at all (P2b)."""
    _clock_program(kernel)
    process = spawn_and_run(kernel, "/bin/clock1")
    assert all(r.nr != Nr.clock_gettime
               for r in kernel.app_requested_syscalls(process.pid))
    assert any(name == "__vdso_clock_gettime"
               for _pid, name, _rip in kernel.vdso_calls)


def test_clock_gettime_syscall_path_without_vdso():
    """With the vDSO removed (tracer policy), libc falls back to a real
    syscall — which is how K23 makes these calls interposable."""
    from repro.kernel.process import Process

    kernel = Kernel(seed=10)
    _clock_program(kernel, "/bin/clock3")
    process = Process(kernel, kernel.new_pid(), "/bin/clock3")
    process.vdso_enabled = False
    kernel.processes[process.pid] = process
    kernel.loader.load_into(process, "/bin/clock3", ["/bin/clock3"], {})
    kernel.run_process(process)
    assert any(r.nr == Nr.clock_gettime
               for r in kernel.app_requested_syscalls(process.pid))
    assert not kernel.vdso_calls


def test_errno_for_missing_file(kernel):
    builder = ProgramBuilder("/bin/miss1")
    builder.string("path", "/no/such/file")
    builder.start()
    builder.libc("openat", (1 << 64) - 100, data_ref("path"), 0)
    builder.libc("exit", RESULT)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/miss1")
    assert process.exit_status == (-Errno.ENOENT) & 0xFF
