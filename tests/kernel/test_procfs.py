"""procfs tests: /proc/$PID/maps synthesis, parsing, and in-program reads."""

import pytest

from repro.kernel import Kernel
from repro.kernel.procfs import entry_for, parse_maps, render_maps
from repro.workloads.programs import ProgramBuilder, RESULT, data_ref
from tests.simutil import make_hello, spawn_and_run


def test_render_and_parse_roundtrip(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    entries = parse_maps(render_maps(process).decode())
    assert entries
    names = {entry.path for entry in entries}
    assert "/usr/bin/hello" in names
    assert "[stack]" in names


def test_entries_carry_permissions(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    entries = parse_maps(render_maps(process).decode())
    binary = next(e for e in entries if e.path == "/usr/bin/hello")
    assert binary.executable
    stack = next(e for e in entries if e.path == "[stack]")
    assert stack.writable and not stack.executable


def test_entry_for_resolves_addresses(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    entries = parse_maps(render_maps(process).decode())
    base, image, _ns = process.loaded_images["/usr/bin/hello"]
    entry = entry_for(entries, base + 10)
    assert entry is not None and entry.path == "/usr/bin/hello"
    assert entry_for(entries, 0xDEAD_0000_0000) is None


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_maps("not a maps line\n")


def test_program_can_read_proc_self_maps(kernel):
    """A simulated program opens and reads its own maps file."""
    builder = ProgramBuilder("/bin/mapsreader")
    builder.string("path", "/proc/self/maps")
    builder.buffer("buf", 4096)
    builder.start()
    builder.libc("openat", (1 << 64) - 100, data_ref("path"), 0)
    builder.libc("read", RESULT, data_ref("buf"), 4096)
    builder.libc("write", 1, data_ref("buf"), RESULT)
    builder.exit(0)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/mapsreader")
    assert process.exit_status == 0
    text = bytes(process.output).decode()
    assert "libc.so.6" in text
    parse_maps(text.rstrip("\x00"))  # well-formed as far as it was read


def test_proc_pid_maps_of_other_process(kernel):
    make_hello().register(kernel)
    victim = kernel.spawn_process("/usr/bin/hello")
    builder = ProgramBuilder("/bin/peeker")
    builder.string("path", f"/proc/{victim.pid}/maps")
    builder.buffer("buf", 256)
    builder.start()
    builder.libc("openat", (1 << 64) - 100, data_ref("path"), 0)
    builder.libc("exit", RESULT)  # exit(fd): >= 3 on success
    builder.register(kernel)
    peeker = kernel.spawn_process("/bin/peeker")
    kernel.run_process(peeker)
    assert peeker.exit_status >= 3


def test_proc_missing_pid_enoent(kernel):
    builder = ProgramBuilder("/bin/peeker2")
    builder.string("path", "/proc/99999/maps")
    builder.start()
    builder.libc("openat", (1 << 64) - 100, data_ref("path"), 0)
    builder.libc("exit", RESULT)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/peeker2")
    assert process.exit_status == (-2) & 0xFF  # ENOENT
