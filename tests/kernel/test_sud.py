"""Syscall User Dispatch semantics: selector, allowlist, arming costs."""

import pytest

from repro.cpu.cycles import Event
from repro.kernel import Kernel
from repro.kernel.syscalls import (
    Nr,
    PR_SET_SYSCALL_USER_DISPATCH,
    PR_SYS_DISPATCH_OFF,
    PR_SYS_DISPATCH_ON,
    SIGSYS,
    SYSCALL_DISPATCH_FILTER_ALLOW,
    SYSCALL_DISPATCH_FILTER_BLOCK,
)
from repro.kernel.sud import SudState
from repro.workloads.programs import ProgramBuilder, data_ref
from tests.simutil import spawn_and_run


class TestSudState:
    def test_disabled_never_dispatches(self):
        sud = SudState()
        assert not sud.should_dispatch(0x1000, lambda addr: 1)

    def test_armed_with_block_selector_dispatches(self):
        sud = SudState()
        sud.arm(allow_start=0, allow_len=0, selector_addr=0x5000)
        assert sud.should_dispatch(
            0x1000, lambda addr: SYSCALL_DISPATCH_FILTER_BLOCK)

    def test_allow_selector_bypasses(self):
        sud = SudState()
        sud.arm(allow_start=0, allow_len=0, selector_addr=0x5000)
        assert not sud.should_dispatch(
            0x1000, lambda addr: SYSCALL_DISPATCH_FILTER_ALLOW)

    def test_allowlisted_range_bypasses_regardless_of_selector(self):
        sud = SudState()
        sud.arm(allow_start=0x7000, allow_len=0x1000, selector_addr=0x5000)
        assert not sud.should_dispatch(
            0x7800, lambda addr: SYSCALL_DISPATCH_FILTER_BLOCK)
        assert sud.should_dispatch(
            0x8000, lambda addr: SYSCALL_DISPATCH_FILTER_BLOCK)

    def test_no_selector_always_dispatches(self):
        sud = SudState()
        sud.arm(allow_start=0, allow_len=0, selector_addr=0)
        assert sud.should_dispatch(0x1000, lambda addr: 0)

    def test_disarm(self):
        sud = SudState()
        sud.arm(0, 0, 0x5000)
        sud.disarm()
        assert not sud.should_dispatch(
            0x1000, lambda addr: SYSCALL_DISPATCH_FILTER_BLOCK)


def sud_program(kernel, disarm_after=False):
    """Arm SUD with a selector in the data section, then issue getpid."""
    builder = ProgramBuilder("/bin/sud1")
    builder.buffer("selector", 1)
    builder.start()
    # prctl(PR_SET_SYSCALL_USER_DISPATCH, ON, 0, 0, &selector)
    builder.libc("prctl", PR_SET_SYSCALL_USER_DISPATCH, PR_SYS_DISPATCH_ON,
                 0, 0, data_ref("selector"))
    if disarm_after:
        builder.libc("prctl", PR_SET_SYSCALL_USER_DISPATCH,
                     PR_SYS_DISPATCH_OFF, 0, 0, 0)
    builder.libc("getpid")
    builder.exit(0)
    builder.register(kernel)
    return builder


def test_sigsys_delivered_on_blocked_syscall(kernel):
    sud_program(kernel)
    process = kernel.spawn_process("/bin/sud1")
    delivered = []

    def handler(sigctx):
        delivered.append(sigctx.info["nr"])
        # Emulate the call so execution continues: write the selector byte
        # to ALLOW is not needed — the handler forwards directly.
        result = kernel.direct_syscall(sigctx.thread, sigctx.info["nr"],
                                       [0] * 6, origin="sud-handler")
        sigctx.set_return_value(result)

    process.dispositions.set_action(SIGSYS, handler)
    # The selector starts at 0 (ALLOW); flip it to BLOCK once armed.  We do
    # it kernel-side right after spawn: find the selector address after the
    # program arms SUD.  Simpler: run and flip when armed.
    kernel.run_process(process, max_steps=200_000)
    # prctl itself ran with selector==ALLOW (byte 0), so nothing dispatched;
    # this test only checks arming machinery.  Full selector flows are
    # exercised by the interposer tests.
    assert process.exited


def test_prctl_arms_and_disarms(kernel):
    sud_program(kernel, disarm_after=True)
    process = spawn_and_run(kernel, "/bin/sud1")
    assert process.exited and process.exit_status == 0
    thread = process.threads[0]
    assert not thread.sud.enabled  # P1b: dispatch was switched off again
    assert process.sud_armed_ever  # ... but the slow path sticks


def test_armed_process_pays_slowpath_on_every_syscall(kernel):
    sud_program(kernel)
    before = kernel.cycles.counts[Event.SUD_ARMED_SLOWPATH]
    process = spawn_and_run(kernel, "/bin/sud1")
    after = kernel.cycles.counts[Event.SUD_ARMED_SLOWPATH]
    # getpid + exit (+ the prctl return path itself) all pay the slow path.
    assert after - before >= 2


def test_unarmed_process_never_pays_slowpath(kernel):
    from tests.simutil import make_hello

    make_hello().register(kernel)
    spawn_and_run(kernel, "/usr/bin/hello")
    assert kernel.cycles.counts[Event.SUD_ARMED_SLOWPATH] == 0


def test_sigsys_default_action_kills(kernel):
    """An armed-and-blocking syscall with no SIGSYS handler is fatal."""
    builder = ProgramBuilder("/bin/sud2")
    builder.buffer("selector", 1)
    builder.start()
    builder.libc("prctl", PR_SET_SYSCALL_USER_DISPATCH, PR_SYS_DISPATCH_ON,
                 0, 0, data_ref("selector"))
    # Flip the selector to BLOCK from simulated code, then syscall.
    from repro.arch.registers import Reg

    builder.asm.lea_rip_label(Reg.RBX, "selector")
    builder.asm.mov_ri(Reg.RAX, SYSCALL_DISPATCH_FILTER_BLOCK)
    builder.asm.store8(Reg.RBX, Reg.RAX)
    builder.libc("getpid")
    builder.exit(0)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/sud2")
    assert process.exited
    assert process.exit_status == 128 + SIGSYS
