"""ptrace interface unit tests: stops, tracee access, detach semantics."""

import pytest

from repro.cpu.cycles import Event
from repro.kernel import Kernel
from repro.kernel.ptrace import SyscallStop, Tracer
from repro.kernel.syscalls import Nr
from tests.simutil import make_hello, spawn_and_run


def test_attach_rejects_double_tracing(kernel):
    make_hello().register(kernel)
    process = kernel.spawn_process("/usr/bin/hello")
    Tracer(kernel).attach(process)
    with pytest.raises(RuntimeError):
        Tracer(kernel).attach(process)


def test_observed_log_records_every_stop(kernel):
    make_hello().register(kernel)
    tracer = Tracer(kernel)
    tracer.disable_vdso = False
    process = kernel.spawn_process("/usr/bin/hello")
    tracer.attach(process)
    kernel.run_process(process)
    assert len(tracer.observed) == len(kernel.app_requested_syscalls(process.pid))
    pids = {pid for pid, _nr, _site in tracer.observed}
    assert pids == {process.pid}


def test_entry_hook_can_rewrite_arguments(kernel):
    """PTRACE_SETREGS semantics: the tracer changes write()'s length."""
    make_hello().register(kernel)
    tracer = Tracer(kernel)

    def entry(stop):
        if stop.number == Nr.write and stop.args(1)[0] == 1:
            from repro.arch.registers import Reg

            stop.thread.context.set(Reg.RDX, 2)  # truncate to 2 bytes
        return True

    tracer.on_syscall_entry = entry
    process = kernel.spawn_process("/usr/bin/hello")
    tracer.attach(process)
    kernel.run_process(process)
    assert bytes(process.output) == b"he"


def test_entry_hook_can_deny_and_fake_result(kernel):
    make_hello().register(kernel)
    tracer = Tracer(kernel)

    def entry(stop):
        if stop.number == Nr.write:
            stop.set_result(-1)
            return False  # skip execution
        return True

    tracer.on_syscall_entry = entry
    process = kernel.spawn_process("/usr/bin/hello")
    tracer.attach(process)
    kernel.run_process(process)
    assert bytes(process.output) == b""  # write never executed
    assert process.exit_status == 0


def test_exit_hook_sees_results(kernel):
    make_hello().register(kernel)
    tracer = Tracer(kernel)
    results = []

    def exit_hook(stop):
        results.append(stop.thread.context.syscall_number & 0xFFFF_FFFF)

    tracer.on_syscall_exit = exit_hook
    process = kernel.spawn_process("/usr/bin/hello")
    tracer.attach(process)
    kernel.run_process(process)
    assert results  # at least the startup calls produced results


def test_peek_poke_and_cstr(kernel):
    make_hello().register(kernel)
    process = kernel.spawn_process("/usr/bin/hello")
    tracer = Tracer(kernel)
    tracer.attach(process)
    thread = process.main_thread
    stop = SyscallStop(thread, entry=True)
    from repro.memory.pages import PAGE_SIZE, Prot

    scratch = process.address_space.mmap(None, PAGE_SIZE,
                                         Prot.READ | Prot.WRITE)
    stop.poke(scratch, b"tracee-visible\x00")
    assert stop.peek(scratch, 6) == b"tracee"
    assert stop.peek_cstr(scratch) == "tracee-visible"


def test_detach_stops_stops(kernel):
    make_hello().register(kernel)
    tracer = Tracer(kernel)
    process = kernel.spawn_process("/usr/bin/hello")
    tracer.attach(process)
    before = kernel.cycles.counts[Event.PTRACE_STOP]
    tracer.detach()
    kernel.run_process(process)
    assert kernel.cycles.counts[Event.PTRACE_STOP] == before
    assert process.tracer is None


def test_stop_charges_context_switches(kernel):
    make_hello().register(kernel)
    tracer = Tracer(kernel)
    tracer.disable_vdso = False
    process = kernel.spawn_process("/usr/bin/hello")
    tracer.attach(process)
    kernel.run_process(process)
    stops = kernel.cycles.counts[Event.PTRACE_STOP]
    # Entry + exit stop per syscall, except the final exit(2), which never
    # returns and therefore has no exit stop.
    assert stops == 2 * len(tracer.observed) - 1


def test_site_rip_points_at_syscall_instruction(kernel):
    make_hello().register(kernel)
    tracer = Tracer(kernel)
    sites = []
    tracer.on_syscall_entry = lambda stop: sites.append(stop.site_rip) or True
    process = kernel.spawn_process("/usr/bin/hello")
    tracer.attach(process)
    kernel.run_process(process)
    for site in sites:
        assert process.address_space.read_kernel(site, 2) in \
            (b"\x0f\x05", b"\x0f\x34")
