"""Kernel edge-case tests: fd semantics, lseek whence modes, dup sharing,
epoll removal, uname/getrandom, heap growth, thread scheduling fairness."""

import pytest

from repro.arch.registers import Reg
from repro.kernel import Kernel
from repro.kernel.syscalls import Errno, Nr
from repro.workloads.programs import ProgramBuilder, RESULT, data_ref
from tests.simutil import spawn_and_run


def run(kernel, builder):
    builder.register(kernel)
    return spawn_and_run(kernel, builder.image.name)


class TestFileDescriptors:
    def test_dup_shares_offset(self, kernel):
        kernel.vfs.create("/data/f", b"abcdef")
        builder = ProgramBuilder("/bin/dup1")
        builder.string("p", "/data/f")
        builder.buffer("buf", 8)
        builder.start()
        builder.libc("openat", (1 << 64) - 100, data_ref("p"), 0)
        builder.asm.mov_rr(Reg.RBX, Reg.RAX)
        builder.libc("read", Reg.RBX, data_ref("buf"), 2)   # offset -> 2
        builder.libc("dup", Reg.RBX)
        builder.libc("read", RESULT, data_ref("buf"), 2)    # continues at 2
        builder.libc("write", 1, data_ref("buf"), 2)
        builder.exit(0)
        process = run(kernel, builder)
        assert bytes(process.output) == b"cd"

    def test_close_invalidates_fd(self, kernel):
        kernel.vfs.create("/data/f", b"x")
        builder = ProgramBuilder("/bin/close1")
        builder.string("p", "/data/f")
        builder.start()
        builder.libc("openat", (1 << 64) - 100, data_ref("p"), 0)
        builder.asm.mov_rr(Reg.RBX, Reg.RAX)
        builder.libc("close", Reg.RBX)
        builder.libc("close", Reg.RBX)  # double close → EBADF
        builder.libc("exit", RESULT)
        process = run(kernel, builder)
        assert process.exit_status == (-Errno.EBADF) & 0xFF

    def test_lseek_end_whence(self, kernel):
        kernel.vfs.create("/data/f", b"0123456789")
        builder = ProgramBuilder("/bin/seek1")
        builder.string("p", "/data/f")
        builder.start()
        builder.libc("openat", (1 << 64) - 100, data_ref("p"), 0)
        builder.asm.mov_rr(Reg.RBX, Reg.RAX)
        builder.libc("lseek", Reg.RBX, (1 << 64) - 3, 2)  # SEEK_END - 3
        builder.libc("exit", RESULT)
        process = run(kernel, builder)
        assert process.exit_status == 7

    def test_write_extends_file(self, kernel):
        builder = ProgramBuilder("/bin/grow1")
        builder.string("p", "/tmp/grow")
        builder.string("payload", "ABCD")
        builder.start()
        builder.libc("openat", (1 << 64) - 100, data_ref("p"), 0o102)
        builder.asm.mov_rr(Reg.RBX, Reg.RAX)
        builder.libc("lseek", Reg.RBX, 4, 0)
        builder.libc("write", Reg.RBX, data_ref("payload"), 4)
        builder.exit(0)
        run(kernel, builder)
        assert kernel.vfs.read("/tmp/grow") == b"\x00\x00\x00\x00ABCD"


class TestMiscSyscalls:
    def test_uname_writes_release(self, kernel):
        builder = ProgramBuilder("/bin/uname1")
        builder.buffer("buf", 64)
        builder.start()
        builder.libc("uname", data_ref("buf"))
        builder.libc("write", 1, data_ref("buf"), 32)
        builder.exit(0)
        process = run(kernel, builder)
        assert b"Linux" in bytes(process.output)

    def test_getrandom_fills_buffer(self, kernel):
        builder = ProgramBuilder("/bin/rand1")
        builder.buffer("buf", 16)
        builder.start()
        builder.libc("getrandom", data_ref("buf"), 16, 0)
        builder.libc("write", 1, data_ref("buf"), 16)
        builder.exit(0)
        process = run(kernel, builder)
        assert len(process.output) == 16
        assert bytes(process.output) != b"\x00" * 16

    def test_brk_growth_is_persistent(self, kernel):
        builder = ProgramBuilder("/bin/brk2")
        builder.start()
        builder.libc("brk", 0)
        from repro.kernel.syscalls import Nr as _Nr

        builder.asm.mov_rr(Reg.RBX, Reg.RAX)
        builder.asm.add_ri(Reg.RBX, 8192)
        builder.libc("brk", Reg.RBX)
        # The grown heap must be writable.
        builder.asm.sub_ri(Reg.RBX, 16)
        builder.asm.mov_ri(Reg.RAX, 0x42)
        builder.asm.store(Reg.RBX, Reg.RAX)
        builder.exit(0)
        process = run(kernel, builder)
        assert process.exit_status == 0

    def test_getppid(self, kernel):
        builder = ProgramBuilder("/bin/ppid1")
        builder.start()
        builder.libc("fork")
        builder.asm.test_rr(Reg.RAX, Reg.RAX)
        builder.asm.jne(".parent")
        builder.libc("getppid")
        builder.libc("exit", RESULT)
        builder.label(".parent")
        builder.libc("wait4", 0, 0, 0, 0)
        builder.exit(0)
        builder.register(kernel)
        parent = kernel.spawn_process("/bin/ppid1")
        kernel.run()
        child = next(p for p in kernel.processes.values()
                     if p.parent is parent)
        assert child.exit_status == parent.pid & 0xFF


class TestEpollEdges:
    def test_ctl_del_removes_watch(self, kernel):
        builder = ProgramBuilder("/bin/ep2")
        builder.buffer("ev", 32)
        builder.start()
        builder.libc("socket", 2, 1, 0)
        builder.asm.mov_rr(Reg.R14, Reg.RAX)
        builder.libc("bind", Reg.R14, 9300, 0)
        builder.libc("listen", Reg.R14, 8)
        builder.libc("epoll_create", 1)
        builder.asm.mov_rr(Reg.R12, Reg.RAX)
        builder.libc("epoll_ctl", Reg.R12, 1, Reg.R14, 0)  # ADD
        builder.libc("epoll_ctl", Reg.R12, 2, Reg.R14, 0)  # DEL
        builder.libc("epoll_wait", Reg.R12, data_ref("ev"), 8, 0)
        builder.exit(0)  # unreachable: the wait blocks forever
        builder.register(kernel)
        process = kernel.spawn_process("/bin/ep2")
        kernel.run_process(process, max_steps=100_000)
        kernel.net.connect(9300)
        kernel.run_process(process, max_steps=100_000)
        assert not process.exited  # the deleted watch never fires

    def test_epoll_on_connection_data(self, kernel):
        builder = ProgramBuilder("/bin/ep3")
        builder.buffer("ev", 32)
        builder.buffer("buf", 64)
        builder.start()
        builder.libc("socket", 2, 1, 0)
        builder.asm.mov_rr(Reg.R14, Reg.RAX)
        builder.libc("bind", Reg.R14, 9400, 0)
        builder.libc("listen", Reg.R14, 8)
        builder.libc("accept", Reg.R14, 0, 0)
        builder.asm.mov_rr(Reg.R13, Reg.RAX)
        builder.libc("epoll_create", 1)
        builder.asm.mov_rr(Reg.R12, Reg.RAX)
        builder.libc("epoll_ctl", Reg.R12, 1, Reg.R13, 0)
        builder.libc("epoll_wait", Reg.R12, data_ref("ev"), 8, 0)
        builder.libc("exit", RESULT)
        builder.register(kernel)
        process = kernel.spawn_process("/bin/ep3")
        kernel.run_process(process, max_steps=100_000)
        conn = kernel.net.connect(9400)
        kernel.run_process(process, max_steps=100_000)
        assert not process.exited  # accepted; waiting for data
        conn.client_send(b"ready")
        kernel.run_process(process, max_steps=100_000)
        assert process.exit_status == 1


class TestThreadScheduling:
    def test_threads_interleave_fairly(self, kernel):
        """Two spinner threads both make progress under round-robin."""
        builder = ProgramBuilder("/bin/threads1")
        builder.buffer("a", 8)
        builder.buffer("b", 8)
        builder.start()
        builder.asm.lea_rip_label(Reg.RDI, "side")
        builder.libc("pthread_create", Reg.RDI)
        builder.libc("getpid")
        # Join-by-flag: wait until the side thread announces completion.
        builder.label(".join")
        builder.asm.lea_rip_label(Reg.RBX, "a")
        builder.asm.load8(Reg.RAX, Reg.RBX)
        builder.asm.test_rr(Reg.RAX, Reg.RAX)
        builder.asm.je(".join")
        builder.exit(0)
        builder.label("side")
        builder.asm.endbr64()
        builder.loop(50, counter=Reg.R14)
        builder.asm.nop()
        builder.end_loop()
        builder.libc("gettid")
        builder.asm.lea_rip_label(Reg.RBX, "a")
        builder.asm.mov_ri(Reg.RAX, 1)
        builder.asm.store8(Reg.RBX, Reg.RAX)
        builder.libc("pthread_exit")
        builder.register(kernel)
        process = spawn_and_run(kernel, "/bin/threads1")
        assert process.exit_status == 0
        names = {r.nr for r in kernel.app_requested_syscalls(process.pid)}
        assert Nr.getpid in names and Nr.gettid in names
