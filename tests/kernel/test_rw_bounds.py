"""read/write count clamping and EFAULT guards (ISSUE satellite fix).

Regression for the fault-injection finding: feeding a syscall's *error*
result back into ``write(1, buf, result)`` — as naive read loops do —
turned the negative count into a ~2^64-byte host-side copy loop.  Linux
clamps I/O counts to ``MAX_RW_COUNT`` and faults on unmapped buffers;
the simulated kernel now does both.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.syscall_impl import MAX_RW_COUNT
from repro.kernel.syscalls import Errno, Nr
from tests.simutil import make_hello


@pytest.fixture
def proc(kernel):
    make_hello().register(kernel)
    return kernel.spawn_process("/usr/bin/hello")


def call(kernel, proc, nr, args):
    return kernel.do_syscall(proc.main_thread, nr, args + [0] * (6 - len(args)),
                             origin="interposer-internal")


class TestWriteBounds:
    def test_unmapped_buffer_faults(self, kernel, proc):
        assert call(kernel, proc, Nr.write,
                    [1, 0xdead_0000, 64]) == -Errno.EFAULT

    def test_negative_count_reinterpreted_faults_fast(self, kernel, proc):
        # write(1, buf, -4): the u64 count clamps to MAX_RW_COUNT and the
        # mapped span check fails long before any host-side copy loop.
        buf = proc.address_space.regions[0].start
        assert call(kernel, proc, Nr.write,
                    [1, buf, (1 << 64) - 4]) == -Errno.EFAULT

    def test_huge_count_on_small_mapping_faults(self, kernel, proc):
        buf = proc.address_space.regions[0].start
        assert call(kernel, proc, Nr.write,
                    [1, buf, MAX_RW_COUNT]) == -Errno.EFAULT

    def test_normal_write_still_works(self, kernel, proc):
        buf = proc.address_space.regions[0].start
        assert call(kernel, proc, Nr.write, [1, buf, 4]) == 4
        assert len(proc.output) == 4

    def test_zero_count_is_a_nop(self, kernel, proc):
        assert call(kernel, proc, Nr.write, [1, 0, 0]) == 0
