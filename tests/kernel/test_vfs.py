"""VFS unit tests, including the immutability bit K23's log hardening uses."""

import pytest

from repro.errors import VFSError
from repro.kernel.vfs import VFS


@pytest.fixture
def vfs():
    return VFS()


def test_create_and_read(vfs):
    vfs.create("/tmp/a.txt", b"hello")
    assert vfs.read("/tmp/a.txt") == b"hello"


def test_parents_created(vfs):
    vfs.create("/deep/nested/dir/file", b"x")
    assert vfs.is_dir("/deep/nested/dir")


def test_lookup_missing_raises_enoent(vfs):
    with pytest.raises(VFSError) as exc:
        vfs.lookup("/nope")
    assert exc.value.errno == 2  # ENOENT


def test_relative_path_rejected(vfs):
    with pytest.raises(VFSError):
        vfs.create("relative.txt")


def test_listdir(vfs):
    vfs.create("/d/a", b"")
    vfs.create("/d/b", b"")
    vfs.create("/d/sub/c", b"")
    assert vfs.listdir("/d") == ["a", "b", "sub"]


def test_listdir_on_file_raises(vfs):
    vfs.create("/f", b"")
    with pytest.raises(VFSError):
        vfs.listdir("/f")


def test_append_and_truncate(vfs):
    vfs.create("/log", b"a")
    vfs.append("/log", b"b")
    assert vfs.read("/log") == b"ab"
    vfs.truncate("/log")
    assert vfs.read("/log") == b""


def test_unlink(vfs):
    vfs.create("/x", b"")
    vfs.unlink("/x")
    assert not vfs.exists("/x")


def test_mkdir_exist_ok(vfs):
    vfs.mkdir("/d")
    vfs.mkdir("/d", exist_ok=True)
    with pytest.raises(VFSError):
        vfs.mkdir("/d")


def test_image_attachment(vfs):
    marker = object()
    vfs.create("/usr/bin/app", b"\x00", image=marker)
    assert vfs.lookup("/usr/bin/app").image is marker


class TestImmutability:
    """§5.3: the offline log directory is sealed for the program lifetime."""

    def test_immutable_file_rejects_writes(self, vfs):
        vfs.create("/k23/logs/ls.log", b"entry")
        vfs.set_immutable("/k23/logs/ls.log")
        with pytest.raises(VFSError) as exc:
            vfs.append("/k23/logs/ls.log", b"more")
        assert exc.value.errno == 1  # EPERM
        with pytest.raises(VFSError):
            vfs.truncate("/k23/logs/ls.log")
        with pytest.raises(VFSError):
            vfs.unlink("/k23/logs/ls.log")

    def test_immutable_dir_rejects_new_entries(self, vfs):
        vfs.create("/k23/logs/a.log", b"")
        vfs.set_immutable("/k23/logs")
        with pytest.raises(VFSError):
            vfs.create("/k23/logs/b.log", b"")

    def test_recursive_seal_covers_children(self, vfs):
        vfs.create("/k23/logs/a.log", b"")
        vfs.set_immutable("/k23/logs")
        with pytest.raises(VFSError):
            vfs.append("/k23/logs/a.log", b"x")

    def test_reads_still_allowed(self, vfs):
        vfs.create("/k23/logs/a.log", b"data")
        vfs.set_immutable("/k23/logs")
        assert vfs.read("/k23/logs/a.log") == b"data"
