"""Socket syscalls: a simulated echo server driven by a host-level client,
including the restartable blocking (accept/recvfrom) machinery."""

import pytest

from repro.kernel import Kernel
from repro.workloads.programs import ProgramBuilder, RESULT, data_ref


def echo_server(kernel, port=8080, requests=2):
    """socket/bind/listen, then accept+recv+send+close per request."""
    builder = ProgramBuilder("/bin/echo1")
    builder.buffer("buf", 256)
    builder.start()
    builder.libc("socket", 2, 1, 0)
    from repro.arch.registers import Reg

    builder.asm.mov_rr(Reg.R14, Reg.RAX)  # listen fd
    builder.libc("bind", Reg.R14, port, 0)
    builder.libc("listen", Reg.R14, 128)
    builder.loop(requests)
    builder.libc("accept", Reg.R14, 0, 0)
    builder.asm.mov_rr(Reg.R13, Reg.RAX)  # conn fd
    builder.libc("recvfrom", Reg.R13, data_ref("buf"), 256, 0, 0, 0)
    builder.libc("sendto", Reg.R13, data_ref("buf"), RESULT, 0, 0, 0)
    builder.libc("close", Reg.R13)
    builder.end_loop()
    builder.exit(0)
    builder.register(kernel)


def test_echo_roundtrip(kernel):
    echo_server(kernel)
    process = kernel.spawn_process("/bin/echo1")
    # Run until the server blocks in accept.
    kernel.run_process(process, max_steps=50_000)
    assert not process.exited

    conn = kernel.net.connect(8080)
    conn.client_send(b"ping-1")
    kernel.run_process(process, max_steps=50_000)
    assert conn.client_recv_all() == b"ping-1"

    conn2 = kernel.net.connect(8080)
    conn2.client_send(b"ping-2")
    kernel.run_process(process, max_steps=50_000)
    assert conn2.client_recv_all() == b"ping-2"
    assert process.exited and process.exit_status == 0


def test_blocked_accept_logs_syscall_once(kernel):
    """The restart protocol must not double-count ground-truth records."""
    echo_server(kernel, requests=1)
    process = kernel.spawn_process("/bin/echo1")
    kernel.run_process(process, max_steps=50_000)
    conn = kernel.net.connect(8080)
    conn.client_send(b"x")
    kernel.run_process(process, max_steps=50_000)
    accepts = [r for r in kernel.app_requested_syscalls(process.pid)
               if r.nr == 43]  # accept
    assert len(accepts) == 1


def test_recv_eof_after_client_close(kernel):
    builder = ProgramBuilder("/bin/eof1")
    builder.buffer("buf", 64)
    builder.start()
    builder.libc("socket", 2, 1, 0)
    from repro.arch.registers import Reg

    builder.asm.mov_rr(Reg.R14, Reg.RAX)
    builder.libc("bind", Reg.R14, 9000, 0)
    builder.libc("listen", Reg.R14, 8)
    builder.libc("accept", Reg.R14, 0, 0)
    builder.asm.mov_rr(Reg.R13, Reg.RAX)
    builder.libc("recvfrom", Reg.R13, data_ref("buf"), 64, 0, 0, 0)
    builder.libc("exit", RESULT)  # exit(recv length)
    builder.register(kernel)
    process = kernel.spawn_process("/bin/eof1")
    kernel.run_process(process, max_steps=50_000)
    conn = kernel.net.connect(9000)
    conn.client_close()
    kernel.run_process(process, max_steps=50_000)
    assert process.exited and process.exit_status == 0  # recv returned 0


def test_connect_refused_without_listener(kernel):
    with pytest.raises(Exception):
        kernel.net.connect(4444)


def test_epoll_readiness(kernel):
    """epoll_create/ctl/wait over a listener."""
    builder = ProgramBuilder("/bin/ep1")
    builder.buffer("events", 64)
    builder.start()
    builder.libc("socket", 2, 1, 0)
    from repro.arch.registers import Reg

    builder.asm.mov_rr(Reg.R14, Reg.RAX)
    builder.libc("bind", Reg.R14, 9100, 0)
    builder.libc("listen", Reg.R14, 8)
    builder.libc("epoll_create", 1)
    builder.asm.mov_rr(Reg.R12, Reg.RAX)
    builder.libc("epoll_ctl", Reg.R12, 1, Reg.R14, 0)  # EPOLL_CTL_ADD
    builder.libc("epoll_wait", Reg.R12, data_ref("events"), 8, 0)
    builder.libc("exit", RESULT)  # exit(ready count)
    builder.register(kernel)
    process = kernel.spawn_process("/bin/ep1")
    kernel.run_process(process, max_steps=50_000)
    assert not process.exited  # parked in epoll_wait
    kernel.net.connect(9100)
    kernel.run_process(process, max_steps=50_000)
    assert process.exited and process.exit_status == 1
