"""Scheduler unit tests: quanta, step caps, blocking, preemption windows."""

import pytest

from repro.kernel import Kernel
from repro.workloads.programs import ProgramBuilder
from tests.simutil import make_hello, spawn_and_run


def spinner(path="/bin/spin"):
    builder = ProgramBuilder(path)
    builder.start()
    builder.label(".forever")
    builder.asm.nop()
    builder.asm.jmp(".forever")
    return builder


def test_max_steps_caps_runaway_programs(kernel):
    spinner().register(kernel)
    process = kernel.spawn_process("/bin/spin")
    retired = kernel.run(max_steps=5_000)
    assert retired == 5_000
    assert not process.exited


def test_run_returns_zero_when_everyone_blocked(kernel):
    from tests.kernel.test_net import echo_server

    echo_server(kernel, port=8500, requests=1)
    process = kernel.spawn_process("/bin/echo1")
    kernel.run(max_steps=500_000)  # parks in accept
    assert kernel.run(max_steps=500_000) == 0  # nothing runnable


def test_run_process_stops_at_exit(kernel):
    make_hello().register(kernel)
    spinner().register(kernel)
    target = kernel.spawn_process("/usr/bin/hello")
    kernel.spawn_process("/bin/spin")  # a competitor that never exits
    kernel.run_process(target, max_steps=2_000_000)
    assert target.exited


def test_runnable_excludes_exited_and_blocked(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    assert process.exited
    assert kernel.runnable_threads() == []


def test_quantum_interleaves_two_processes(kernel):
    kernel.quantum = 10
    spinner("/bin/spin_a").register(kernel)
    spinner("/bin/spin_b").register(kernel)
    a = kernel.spawn_process("/bin/spin_a")
    b = kernel.spawn_process("/bin/spin_b")
    kernel.run(max_steps=2_000)
    # Both made progress (RIP far from their entry stubs).
    assert a.main_thread.context.rip != 0
    assert b.main_thread.context.rip != 0


class TestPreemptionWindow:
    def test_noop_when_no_siblings(self, kernel):
        make_hello().register(kernel)
        process = spawn_and_run(kernel, "/usr/bin/hello")
        kernel.preemption_window(process.main_thread)  # must not blow up

    def test_probability_zero_disables_window(self, kernel):
        spinner().register(kernel)
        process = kernel.spawn_process("/bin/spin")
        sibling = process.spawn_thread()
        sibling.context.restore(process.main_thread.context.save())
        kernel.torn_window_probability = 0.0
        rip_before = sibling.context.rip
        kernel.preemption_window(process.main_thread, steps=50)
        assert sibling.context.rip == rip_before

    def test_window_runs_siblings(self, kernel):
        from repro.arch.registers import Reg

        counter = ProgramBuilder("/bin/counter")
        counter.start()
        counter.label(".forever")
        counter.asm.inc(Reg.RBX)
        counter.asm.jmp(".forever")
        counter.register(kernel)
        process = kernel.spawn_process("/bin/counter")
        kernel.run(max_steps=500)  # past the loader stub
        sibling = process.spawn_thread()
        sibling.context.restore(process.main_thread.context.save())
        rbx_before = sibling.context.get(Reg.RBX)
        kernel.preemption_window(process.main_thread, steps=50)
        assert sibling.context.get(Reg.RBX) > rbx_before

    def test_reentrancy_guard(self, kernel):
        spinner().register(kernel)
        process = kernel.spawn_process("/bin/spin")
        kernel._preempting = True
        try:
            sibling = process.spawn_thread()
            sibling.context.restore(process.main_thread.context.save())
            rip_before = sibling.context.rip
            kernel.preemption_window(process.main_thread, steps=50)
            assert sibling.context.rip == rip_before
        finally:
            kernel._preempting = False
