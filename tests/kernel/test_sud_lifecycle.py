"""SUD lifecycle across clone/execve/disarm (ISSUE satellite)."""

from repro.arch.registers import Reg
from repro.kernel import Kernel
from repro.kernel.syscall_impl import do_execve
from repro.kernel.syscalls import (
    CLONE_THREAD,
    CLONE_VM,
    Nr,
    PR_SET_SYSCALL_USER_DISPATCH,
    PR_SYS_DISPATCH_OFF,
    PR_SYS_DISPATCH_ON,
)
from repro.workloads.programs import ProgramBuilder, data_ref
from tests.simutil import make_hello, spawn_and_run


def hello_kernel() -> Kernel:
    kernel = Kernel(seed=42)
    make_hello().register(kernel)
    return kernel


class TestCloneThread:
    def test_clone_vm_thread_inherits_a_sud_copy(self):
        kernel = hello_kernel()
        process = kernel.spawn_process("/usr/bin/hello")
        thread = process.main_thread
        thread.sud.arm(allow_start=0x7000, allow_len=0x100,
                       selector_addr=0x5000)
        process.sud_armed_ever = True
        tid = kernel.do_syscall(
            thread, Nr.clone,
            [CLONE_VM | CLONE_THREAD, 0x123000, 0, 0, 0, 0],
            origin="interposer-internal")
        child = next(t for t in process.threads if t.tid == tid)
        assert child is not thread
        # Linux semantics: the SUD config is per-thread and *copied* at
        # clone — disarming the child must not disarm the parent.
        assert child.sud.enabled
        assert child.sud.selector_addr == 0x5000
        assert child.sud.allow_start == 0x7000
        assert child.sud is not thread.sud
        child.sud.disarm()
        assert thread.sud.enabled
        # Child starts with RAX=0 (the "I am the child" return value) and
        # the requested stack.
        assert child.context.get(Reg.RAX) == 0
        assert child.context.get(Reg.RSP) == 0x123000

    def test_clone_without_thread_flags_degenerates_to_fork(self):
        kernel = hello_kernel()
        process = kernel.spawn_process("/usr/bin/hello")
        process.sud_armed_ever = True
        pid = kernel.do_syscall(process.main_thread, Nr.clone,
                                [0, 0, 0, 0, 0, 0],
                                origin="interposer-internal")
        assert pid != process.pid
        child = kernel.processes[pid]
        # The process-wide slow-path flag is inherited across fork.
        assert child.sud_armed_ever


class TestExecve:
    def test_execve_resets_sud_and_signal_state(self):
        kernel = hello_kernel()
        process = kernel.spawn_process("/usr/bin/hello")
        thread = process.main_thread
        thread.sud.arm(0x7000, 0x100, 0x5000)
        process.sud_armed_ever = True
        thread.blocked_signals.add(10)
        thread.pending_signals.append((10, 0, {}))
        thread.signal_frames.append((10, thread.context.save()))
        do_execve(kernel, thread, "/usr/bin/hello", ["/usr/bin/hello"], [])
        assert not thread.sud.enabled
        assert thread.sud.selector_addr == 0
        assert thread.sud.allow_start == 0 and thread.sud.allow_len == 0
        assert not process.sud_armed_ever
        assert thread.blocked_signals == set()
        assert thread.pending_signals == []
        assert thread.signal_frames == []
        # The fresh image still runs to completion.
        kernel.run_process(process, max_steps=500_000)
        assert process.exited and process.exit_status == 0
        assert bytes(process.output) == b"hello\n"

    def test_program_that_arms_then_execs_comes_up_clean(self):
        kernel = hello_kernel()
        builder = ProgramBuilder("/bin/armexec")
        builder.string("target", "/usr/bin/hello")
        builder.buffer("selector", 1)
        builder.start()
        builder.libc("prctl", PR_SET_SYSCALL_USER_DISPATCH,
                     PR_SYS_DISPATCH_ON, 0, 0, data_ref("selector"))
        builder.libc("execve", data_ref("target"), 0, 0)
        builder.exit(1)  # unreachable when execve succeeds
        builder.register(kernel)
        process = spawn_and_run(kernel, "/bin/armexec")
        assert process.exited and process.exit_status == 0
        assert bytes(process.output) == b"hello\n"
        assert not process.main_thread.sud.enabled
        assert not process.sud_armed_ever


class TestDisarm:
    def test_disarm_keeps_armed_ever_slow_path(self):
        kernel = Kernel(seed=42)
        builder = ProgramBuilder("/bin/armdisarm")
        builder.buffer("selector", 1)
        builder.start()
        builder.libc("prctl", PR_SET_SYSCALL_USER_DISPATCH,
                     PR_SYS_DISPATCH_ON, 0, 0, data_ref("selector"))
        builder.libc("prctl", PR_SET_SYSCALL_USER_DISPATCH,
                     PR_SYS_DISPATCH_OFF, 0, 0, 0)
        builder.libc("getpid")
        builder.exit(0)
        builder.register(kernel)
        process = spawn_and_run(kernel, "/bin/armdisarm")
        assert process.exited and process.exit_status == 0
        assert not process.main_thread.sud.enabled
        # Once armed, always the slow kernel entry path (Table 5's
        # SUD-no-interposition cost) — disarm does not undo it.
        assert process.sud_armed_ever
