"""Same-signal masking during handler execution (ISSUE satellite).

Linux blocks a signal while its own handler runs (unless SA_NODEFER):
host handlers until they return, simulated-address handlers until
``rt_sigreturn``.  An async same-signal arriving masked queues; a
*synchronous* fault arriving masked force-kills with the default action
(``force_sig``) — the nested-SIGSYS scenario interposers must never see.
"""

import pytest

from repro.errors import ProcessKilled
from repro.kernel import Kernel
from repro.kernel.signals import default_action
from repro.kernel.syscalls import (Nr, SIGCHLD, SIGQUIT, SIGSEGV, SIGSYS,
                                   SIGTERM, SIGURG, SIGUSR1, SIGUSR2,
                                   SIGWINCH)
from repro.workloads.programs import ProgramBuilder
from repro.arch.registers import Reg
from tests.simutil import make_hello, spawn_and_run


@pytest.fixture
def proc(kernel):
    make_hello().register(kernel)
    return kernel.spawn_process("/usr/bin/hello")


class TestHostHandlerMasking:
    def test_async_same_signal_defers_until_handler_returns(self, kernel,
                                                            proc):
        thread = proc.main_thread
        depths = []

        def handler(ctx):
            depths.append(len(depths))
            assert SIGUSR1 in thread.blocked_signals
            if len(depths) == 1:
                # Re-raise while masked: must queue, not nest.
                kernel.deliver_signal(thread, SIGUSR1)
                assert len(depths) == 1  # no nested invocation happened
                assert len(thread.pending_signals) == 1

        proc.dispositions.set_action(SIGUSR1, handler)
        kernel.deliver_signal(thread, SIGUSR1)
        # The queued instance was flushed after the first return.
        assert depths == [0, 1]
        assert thread.pending_signals == []
        assert SIGUSR1 not in thread.blocked_signals

    def test_sync_fault_while_blocked_force_kills(self, kernel, proc):
        thread = proc.main_thread
        proc.dispositions.set_action(
            SIGSYS, lambda ctx: kernel.deliver_signal(thread, SIGSYS,
                                                      sync=True))
        with pytest.raises(ProcessKilled) as exc:
            kernel.deliver_signal(thread, SIGSYS)
        assert exc.value.signal == SIGSYS
        assert "forced" in str(exc.value)


class TestSimulatedHandlerMasking:
    def test_masked_until_rt_sigreturn(self, kernel, proc):
        thread = proc.main_thread
        proc.dispositions.set_action(SIGUSR2, 0x5000)  # simulated address
        kernel.deliver_signal(thread, SIGUSR2)
        assert len(thread.signal_frames) == 1
        assert SIGUSR2 in thread.blocked_signals
        assert thread.context.rip == 0x5000
        # A second async instance while the handler "runs": queued.
        kernel.deliver_signal(thread, SIGUSR2)
        assert len(thread.signal_frames) == 1
        assert len(thread.pending_signals) == 1
        # sigreturn pops the frame, clears the mask, then flushes — the
        # pending instance immediately pushes a fresh frame.
        kernel.do_syscall(thread, Nr.rt_sigreturn, [0, 0, 0, 0, 0, 0],
                          origin="interposer-internal")
        assert len(thread.signal_frames) == 1
        assert thread.pending_signals == []
        assert SIGUSR2 in thread.blocked_signals


class TestDefaultActions:
    def test_core_vs_terminate_vs_ignore(self):
        with pytest.raises(ProcessKilled) as segv:
            default_action(SIGSEGV)
        assert segv.value.core
        with pytest.raises(ProcessKilled) as quit_:
            default_action(SIGQUIT)
        assert quit_.value.core
        with pytest.raises(ProcessKilled) as term:
            default_action(SIGTERM)
        assert not term.value.core
        for ignored in (SIGCHLD, SIGURG, SIGWINCH):
            default_action(ignored)  # no raise

    def test_core_dump_flag_reaches_the_process(self, kernel):
        builder = ProgramBuilder("/bin/nullread")
        builder.start()
        builder.asm.xor_rr(Reg.RBX, Reg.RBX)
        builder.asm.load(Reg.RAX, Reg.RBX)  # SIGSEGV
        builder.exit(0)
        builder.register(kernel)
        process = spawn_and_run(kernel, "/bin/nullread", max_steps=100_000)
        assert process.exited
        assert process.core_dumped

    def test_clean_exit_does_not_dump_core(self, kernel, proc):
        kernel.run_process(proc, max_steps=500_000)
        assert proc.exited and proc.exit_status == 0
        assert not proc.core_dumped
