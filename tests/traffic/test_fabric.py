"""The queueing fabric and the shard merge — no kernels involved.

Service times are injected directly, so these tests pin the fabric's
semantics (serialization, leveling, shedding) and the merge's exactness
without paying for calibration.
"""

from repro.observability.analyzers.latency import LogHistogram
from repro.traffic.config import TrafficConfig
from repro.traffic.engine import merge_mechanism, _find_knee, shard_servers
from repro.traffic.loadbalancer import ServerSim, simulate_server
from repro.traffic.schedule import generate_schedule


def flat_table(schedule, service_ns):
    return {(t, k): service_ns
            for t in range(len(schedule.tenant_names))
            for k in range(len(schedule.kind_names))}


def small(**kwargs):
    defaults = dict(requests=1500, rate=200_000, servers=2,
                    connections=32, ramp=(1, 4), workers=2, queue_limit=8)
    defaults.update(kwargs)
    return TrafficConfig(**defaults)


def test_conservation_offered_equals_completed_plus_shed():
    config = small()
    schedule = generate_schedule(config, 3)
    table = flat_table(schedule, 20_000)  # deliberately over capacity
    for server in range(config.servers):
        doc = simulate_server(server, schedule, table, config.workers,
                              config.queue_limit)
        offered = sum(doc["offered"].values())
        assert offered == sum(doc["completed"].values()) \
            + sum(doc["shed"].values())
        assert offered == sum(1 for _ in schedule.iter_requests(server))


def test_underloaded_server_sheds_nothing():
    config = small()
    schedule = generate_schedule(config, 5)
    doc = simulate_server(0, schedule, flat_table(schedule, 100),
                          config.workers, config.queue_limit)
    assert sum(doc["shed"].values()) == 0


def test_overload_sheds_and_saturates_depth():
    config = small(queue_limit=4)
    schedule = generate_schedule(config, 5)
    doc = simulate_server(0, schedule, flat_table(schedule, 200_000),
                          config.workers, config.queue_limit)
    assert sum(doc["shed"].values()) > 0
    assert max(doc["stage_max_depth"]) == 4  # pinned at the limit


def test_connection_serialization_is_measured_latency():
    """Two same-time arrivals on ONE connection must serialize even with
    idle workers; on two connections they run concurrently."""
    sim = ServerSim(server=0, workers=4, queue_limit=16,
                    service_ns={(0, 0): 1000}, stages=1,
                    sample_every_ns=10_000)
    sim.offer(0, 0, 0, 0, conn=1)
    sim.offer(0, 0, 0, 0, conn=1)  # same conn: waits for first
    sim.offer(0, 0, 0, 0, conn=2)  # different conn: immediate
    sim.drain()
    hist = sim.latency[(0, 0, 0)]
    assert hist.count == 3
    assert hist.max >= 2000  # the serialized request waited a service
    assert hist.min == 1000  # the concurrent ones did not


def test_merge_is_shard_count_invariant():
    """Dealing the same server docs across 1, 2, or 3 shard docs yields
    byte-identical merged sections — the --jobs guarantee's core."""
    config = small(servers=3, connections=33)
    schedule = generate_schedule(config, 17)
    table = flat_table(schedule, 5_000)
    docs = [simulate_server(s, schedule, table, config.workers,
                            config.queue_limit)
            for s in range(3)]
    calibration = {"kinds": {}}

    def shard_doc(servers):
        return {"schedule_digest": schedule.digest(),
                "calibration": calibration,
                "servers": [docs[s] for s in servers]}

    import json
    merged = []
    for dealing in ([[0, 1, 2]], [[0, 2], [1]], [[2], [0], [1]]):
        section = merge_mechanism([shard_doc(d) for d in dealing],
                                  config, schedule)
        merged.append(json.dumps(section, sort_keys=True))
    assert merged[0] == merged[1] == merged[2]


def test_merge_rejects_mismatched_schedules():
    import pytest

    config = small()
    a = generate_schedule(config, 1)
    b = generate_schedule(config, 2)
    table = flat_table(a, 1000)
    doc_a = {"schedule_digest": a.digest(), "calibration": {},
             "servers": [simulate_server(0, a, table, 2, 8)]}
    doc_b = {"schedule_digest": b.digest(), "calibration": {},
             "servers": [simulate_server(1, b, table, 2, 8)]}
    with pytest.raises(ValueError, match="disagree"):
        merge_mechanism([doc_a, doc_b], config, a)


def test_shard_servers_partition():
    dealt = [shard_servers(5, shard, 2) for shard in range(2)]
    assert dealt == [[0, 2, 4], [1, 3]]
    assert sorted(sum(dealt, [])) == list(range(5))


def _stage_row(stage, rate, shed=0, p99_ns=0):
    return {"stage": stage, "rate": rate, "offered": 100,
            "completed": 100 - shed, "shed": shed,
            "throughput_rps": rate, "p50_ns": 0, "p99_ns": p99_ns,
            "p999_ns": p99_ns, "pmax_ns": p99_ns, "max_depth": 0}


def test_knee_first_slo_violation_wins():
    config = small(slo_p99_ms=1)
    stages = [_stage_row(0, 100, p99_ns=500_000),
              _stage_row(1, 200, p99_ns=2_000_000),
              _stage_row(2, 400, shed=5, p99_ns=9_000_000)]
    knee = _find_knee(config, stages)
    assert knee["stage"] == 1 and knee["reason"] == "p99-slo"


def test_knee_shed_reason():
    config = small(slo_p99_ms=1000)
    stages = [_stage_row(0, 100), _stage_row(1, 200, shed=1)]
    knee = _find_knee(config, stages)
    assert knee["stage"] == 1 and knee["reason"] == "shed"


def test_knee_absent_when_ramp_never_saturates():
    config = small(slo_p99_ms=1000)
    knee = _find_knee(config, [_stage_row(0, 100), _stage_row(1, 200)])
    assert knee["stage"] is None and knee["reason"] is None


def test_histogram_sharded_merge_is_exact():
    """Satellite (c): count/sum + sparse buckets through to_dict →
    from_dict → merge reproduce the unsharded histogram exactly."""
    values = [3, 17, 171, 4096, 99_999, 1_000_000, 7, 17]
    whole = LogHistogram()
    for v in values:
        whole.record(v)
    shard_a, shard_b = LogHistogram(), LogHistogram()
    for i, v in enumerate(values):
        (shard_a if i % 2 else shard_b).record(v)
    merged = LogHistogram.from_dict(shard_a.to_dict())
    merged.merge(LogHistogram.from_dict(shard_b.to_dict()))
    assert merged.to_dict() == whole.to_dict()
    assert merged.count == whole.count and merged.total == whole.total
