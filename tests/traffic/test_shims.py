"""The TrafficSource redesign's compatibility surface."""

import warnings

import pytest

from repro.workloads.clients import (KeepAliveSource, LoadGenerator,
                                     MirroredLoadGenerator, MirroredSource,
                                     TrafficSource, redis_benchmark, wrk)
from tests.workloads.test_clients import keepalive_echo

from repro.kernel import Kernel


@pytest.fixture
def served_kernel():
    kernel = Kernel(seed=71)
    keepalive_echo(kernel, port=8080)
    process = kernel.spawn_process("/bin/kecho")
    kernel.run_process(process, max_steps=200_000)
    return kernel


def test_shims_subclass_the_new_names():
    assert issubclass(LoadGenerator, KeepAliveSource)
    assert issubclass(MirroredLoadGenerator, MirroredSource)
    assert issubclass(KeepAliveSource, TrafficSource)
    assert issubclass(MirroredSource, TrafficSource)


def test_loadgenerator_warns_once(served_kernel):
    import repro.workloads.clients as clients

    clients._WARNED.discard("LoadGenerator")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        LoadGenerator(served_kernel, 8080, connections=1, payload=b"x")
        LoadGenerator(served_kernel, 8080, connections=1, payload=b"x")
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "KeepAliveSource" in str(deprecations[0].message)


def test_new_names_do_not_warn(served_kernel):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        KeepAliveSource(served_kernel, 8080, connections=1, payload=b"x")
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_wrk_and_redis_benchmark_return_sources(served_kernel):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert type(wrk(served_kernel, 8080, 2)) is KeepAliveSource
        assert type(redis_benchmark(served_kernel, 8080, 2)) is \
            KeepAliveSource
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_legacy_mirrored_drive_returns_tuple(served_kernel):
    """The old MirroredLoadGenerator.drive contract — (DriveResult,
    mismatches) — survives on the shim; the new MirroredSource returns
    the DriveResult alone."""
    import repro.workloads.clients as clients

    primary = KeepAliveSource(served_kernel, 8080, connections=1,
                              payload=b"ping")
    kernel_b = Kernel(seed=71)
    keepalive_echo(kernel_b, port=8080)
    kernel_b.run_process(kernel_b.spawn_process("/bin/kecho"),
                         max_steps=200_000)
    shadow = KeepAliveSource(kernel_b, 8080, connections=1,
                             payload=b"ping")
    clients._WARNED.discard("MirroredLoadGenerator")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = MirroredLoadGenerator(primary, shadow)
        result, mismatches = legacy.drive(2)
    assert result.requests == 2
    assert mismatches == []


def test_mirrored_source_drive_returns_result_only(served_kernel):
    primary = KeepAliveSource(served_kernel, 8080, connections=1,
                              payload=b"ping")
    kernel_b = Kernel(seed=71)
    keepalive_echo(kernel_b, port=8080)
    kernel_b.run_process(kernel_b.spawn_process("/bin/kecho"),
                         max_steps=200_000)
    shadow = KeepAliveSource(kernel_b, 8080, connections=1,
                             payload=b"ping")
    mirror = MirroredSource(primary, shadow)
    result = mirror.drive(2)
    assert result.requests == 2
    assert mirror.mismatches == []


def test_prepared_run_traffic_source_is_keepalive():
    from repro.runapi import RunConfig, prepare

    prepared = prepare(RunConfig(mechanism="native", workload="redis",
                                 seed=5))
    prepared.boot()
    source = prepared.traffic_source()
    assert type(source) is KeepAliveSource
    assert type(prepared.load_generator()) is KeepAliveSource
