"""Per-request span tracing: zero-residual trees, exact exemplar merge.

The two contracts under test:

- **zero residual** — every span's stage durations sum exactly to its
  recorded latency, in both serve modes (the fabric's integer-ns math
  and the full-serve kernel's cycle→ns floor rounding alike);
- **shard invariance** — the exemplar reservoir merge is exact, so a
  span-traced report stays byte-identical across ``--jobs`` counts and
  engine tiers, and enabling spans changes nothing *except* the
  exemplar section and its own config echo.
"""

import copy
import json
import os

import pytest

import repro.traffic.fleet as fleet
from repro.observability.spans import (ExemplarReservoir, SpanFlightRecorder,
                                       TraceContext, find_span, iter_spans,
                                       make_span, merge_exemplar_docs,
                                       residual, span_id, worst_span)
from repro.traffic.config import TrafficConfig
from repro.traffic.engine import run_loadtest
from repro.traffic.fleet import RoundAdmission
from repro.traffic.loadbalancer import ServerSim

from tests.traffic.test_determinism import TIER_HATCHES

TENANTS = ("anchor", "batch")
KINDS = ("small", "medium", "large")


@pytest.fixture(autouse=True)
def fresh_calibration():
    fleet._CALIBRATION_CACHE.clear()
    yield
    fleet._CALIBRATION_CACHE.clear()


def span_config(**kwargs):
    defaults = dict(requests=1200, servers=3, connections=48,
                    calibration_requests=12, workers=2, ramp=(1, 2, 8),
                    spans=True)
    defaults.update(kwargs)
    return TrafficConfig(**defaults)


def full_span_config(**kwargs):
    defaults = dict(requests=150, servers=2, connections=12,
                    calibration_requests=10, workers=2, ramp=(1, 4),
                    serve_mode="full", spans=True)
    defaults.update(kwargs)
    return TrafficConfig(**defaults)


def report_for(traffic, jobs=1, seed=23):
    return run_loadtest(["native"], "redis", traffic, seed=seed, jobs=jobs)


# ------------------------------------------------------------- span model


class TestSpanModel:
    def test_service_is_the_remainder(self):
        span = make_span(7, server=1, conn=3, stage=0, tenant="anchor",
                         kind="small", arrival_ns=100, latency_ns=1000,
                         admission_ns=100, conn_wait_ns=300, queue_ns=200)
        assert span["id"] == span_id(7) == "r-7"
        assert dict(span["stages"])["service"] == 400
        assert residual(span) == 0

    def test_negative_remainder_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            make_span(0, 0, 0, 0, "t", "k", arrival_ns=0, latency_ns=10,
                      admission_ns=20)

    def test_reservoir_is_offer_order_independent(self):
        spans = [make_span(i, 0, i, 0, "anchor", "small", arrival_ns=i,
                           latency_ns=(i * 37) % 101)
                 for i in range(60)]
        forward, backward = (ExemplarReservoir(per_group=3, shed_keep=2)
                             for _ in range(2))
        for span in spans:
            forward.offer(span)
        for span in reversed(spans):
            backward.offer(span)
        assert forward.to_doc() == backward.to_doc()

    def test_reservoir_keeps_slowest_n_and_earliest_shed(self):
        reservoir = ExemplarReservoir(per_group=2, shed_keep=2)
        for i in range(10):
            reservoir.offer(make_span(i, 0, i, 0, "anchor", "small",
                                      arrival_ns=i, latency_ns=100 + i))
        for i in range(10, 15):
            reservoir.offer(make_span(i, 0, i, 0, "anchor", "small",
                                      arrival_ns=i, latency_ns=5,
                                      shed=True))
        doc = reservoir.to_doc()
        kept = [s["id"] for s in doc["per_group"]["0:anchor:small"]]
        assert kept == ["r-9", "r-8"]  # slowest two, slowest first
        shed = [s["id"] for s in doc["shed"]["0:anchor:small"]]
        assert shed == ["r-10", "r-11"]  # earliest two
        assert doc["shed_total"] == 5

    def test_merge_is_shard_dealing_invariant(self):
        spans = [make_span(i, i % 4, i, i % 3, TENANTS[i % 2],
                           KINDS[i % 3], arrival_ns=i,
                           latency_ns=(i * 13) % 257, shed=(i % 11 == 0))
                 for i in range(120)]
        unsharded = ExemplarReservoir(per_group=3, shed_keep=4)
        for span in spans:
            unsharded.offer(span)
        for nshards in (2, 3, 4):
            shard_docs = []
            for shard in range(nshards):
                reservoir = ExemplarReservoir(per_group=3, shed_keep=4)
                # Deal by *server*, as the engine does.
                for span in spans:
                    if span["server"] % nshards == shard:
                        reservoir.offer(span)
                shard_docs.append(reservoir.to_doc())
            merged = merge_exemplar_docs(shard_docs, 3, 4)
            assert merged == unsharded.to_doc(), \
                f"{nshards}-way merge diverged from the unsharded doc"

    def test_flight_recorder_ring_and_dump(self, tmp_path):
        ring = SpanFlightRecorder(capacity=4)
        for i in range(10):
            ring.record({"id": f"r-{i}"})
        assert [s["id"] for s in ring.snapshot()] == \
            ["r-6", "r-7", "r-8", "r-9"]
        path = ring.dump(str(tmp_path / "flight.json"), reason="test")
        doc = json.loads(open(path).read())
        assert doc["reason"] == "test"
        assert doc["recorded"] == 10
        assert len(doc["spans"]) == 4


# -------------------------------------------------------- fabric capture


class TestFabricSpans:
    def make_sim(self, trace, queue_limit=64, workers=1):
        return ServerSim(server=0, workers=workers, queue_limit=queue_limit,
                         service_ns={(0, 0): 100}, stages=1,
                         sample_every_ns=10_000, trace=trace)

    def make_trace(self, **kwargs):
        return TraceContext(server=0, tenant_names=TENANTS,
                            kind_names=KINDS, **kwargs)

    def test_queue_and_conn_waits_attributed(self):
        trace = self.make_trace()
        sim = self.make_sim(trace)
        # Two requests on one connection: the second serializes behind
        # the first (conn-wait), no queueing (a worker is free).
        sim.offer(0, 0, 0, 0, conn=1, index=0)
        sim.offer(0, 0, 0, 0, conn=1, index=1)
        sim.drain()
        doc = trace.reservoir.to_doc()
        first = find_span(doc, "r-0")
        second = find_span(doc, "r-1")
        assert dict(first["stages"]) == {"admission-wait": 0,
                                         "conn-wait": 0, "queue-wait": 0,
                                         "service": 100}
        assert dict(second["stages"])["conn-wait"] == 100
        assert second["latency_ns"] == 200
        assert residual(first) == residual(second) == 0

    def test_shed_requests_become_shed_spans(self):
        trace = self.make_trace()
        sim = self.make_sim(trace, queue_limit=1)
        # Distinct connections: one in service, one queued, rest shed.
        for i in range(4):
            sim.offer(0, 0, 0, 0, conn=10 + i, index=i)
        sim.drain()
        doc = trace.reservoir.to_doc()
        assert doc["shed_total"] == 2
        shed = [s for s in iter_spans(doc) if s["shed"]]
        assert {s["id"] for s in shed} == {"r-2", "r-3"}
        assert all(residual(s) == 0 for s in shed)

    def test_untraced_offer_still_works(self):
        sim = self.make_sim(trace=None)
        sim.offer(0, 0, 0, 0, conn=1)  # the pre-span call signature
        sim.drain()
        assert sim.result()["completed"] == {"0:0:0": 1}


# ----------------------------------------------------- full-serve capture


class TestFullServeSpans:
    def test_record_stalled_snapshots_unfinished_requests(self):
        trace = TraceContext(server=0, tenant_names=TENANTS,
                             kind_names=KINDS)
        admission = RoundAdmission(
            kernel=None, connections={}, arrivals=[], payloads={},
            expected_len=1, epoch_cycles=0, queue_limit=8, stages=1,
            span_ns=1000, trace=trace)
        # One in-flight request (sent at cycle 40 after release at 32),
        # one still parked on the same connection's queue.
        admission.busy[5] = (10, 0, 0, 1, 5, 7)
        admission._span_meta[7] = [22, 32, 8]  # admission, release, wait
        from collections import deque
        admission.conn_queue[5] = deque([(50, 0, 1, 2, 5, 8)])
        admission._span_meta[8] = [14, 64]     # never sent: 2-entry meta
        admission.record_stalled(now=200)
        doc = trace.reservoir.to_doc()
        stalled = [s for s in iter_spans(doc) if s["stalled"]]
        assert {s["id"] for s in stalled} == {"r-7", "r-8"}
        assert all(s["shed"] and residual(s) == 0 for s in stalled)
        assert admission._span_meta == {}

    def test_full_mode_spans_have_zero_residual(self):
        report = report_for(full_span_config())
        exemplars = report.exemplars("native")
        spans = list(iter_spans(exemplars))
        assert spans
        for span in spans:
            assert residual(span) == 0
            # Full mode has no separately observable kernel queue.
            assert dict(span["stages"])["queue-wait"] == 0


# ------------------------------------------------------ report invariance


class TestReportInvariance:
    def test_model_report_with_spans_is_jobs_invariant(self):
        baseline = report_for(span_config(), jobs=1).to_json()
        for jobs in (2, 4):
            fleet._CALIBRATION_CACHE.clear()
            assert report_for(span_config(), jobs=jobs).to_json() \
                == baseline, f"--jobs {jobs} perturbed the exemplars"

    def test_full_report_with_spans_is_jobs_invariant(self):
        baseline = report_for(full_span_config(), jobs=1).to_json()
        fleet._CALIBRATION_CACHE.clear()
        assert report_for(full_span_config(), jobs=2).to_json() == baseline

    def test_model_report_with_spans_is_tier_invariant(self):
        baseline = report_for(span_config()).to_json()
        for hatch in TIER_HATCHES:
            fleet._CALIBRATION_CACHE.clear()
            os.environ[hatch] = "1"
            try:
                assert report_for(span_config()).to_json() == baseline, \
                    f"{hatch}=1 perturbed the span-traced report"
            finally:
                del os.environ[hatch]

    def test_enabling_spans_only_adds_the_exemplar_section(self):
        plain = report_for(span_config(spans=False)).doc
        fleet._CALIBRATION_CACHE.clear()
        traced = copy.deepcopy(report_for(span_config()).doc)
        for section in traced["mechanisms"].values():
            assert section.pop("exemplars")  # present and non-empty
        traced["traffic"]["spans"] = False
        assert json.dumps(traced, sort_keys=True) == \
            json.dumps(plain, sort_keys=True)

    def test_model_mode_spans_report_zero_residual_everywhere(self):
        report = report_for(span_config(queue_limit=8))
        exemplars = report.exemplars("native")
        spans = list(iter_spans(exemplars))
        assert spans
        assert all(residual(s) == 0 for s in spans)
        # Model mode has no admission seam.
        assert all(dict(s["stages"])["admission-wait"] == 0 for s in spans)


# ------------------------------------------------------------ sloexplain


class TestSloexplainCLI:
    @pytest.fixture()
    def report_path(self, tmp_path):
        report = report_for(span_config())
        path = tmp_path / "METRICS_slo.json"
        report.write(str(path))
        return report, str(path)

    def test_breakdown_sums_exactly_to_latency(self, report_path, capsys):
        from repro.tools.sloexplain import main

        report, path = report_path
        span = worst_span(report.exemplars("native"))
        assert main([span["id"], "--report", path]) == 0
        out = capsys.readouterr().out
        assert span["id"] in out
        assert f"latency={span['latency_ns']} ns" in out
        # Every stage line renders the exact integer duration; their sum
        # is the latency (zero residual) by the span model's contract.
        assert sum(dur for _name, dur in span["stages"]) \
            == span["latency_ns"]
        assert "verdict:" in out and "position:" in out

    def test_worst_and_json_and_perfetto(self, report_path, tmp_path,
                                         capsys):
        from repro.observability.export import validate_chrome_trace
        from repro.tools.sloexplain import main

        report, path = report_path
        trace_out = str(tmp_path / "spans-trace.json")
        assert main(["--worst", "--report", path, "--json",
                     "--perfetto", trace_out]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[:out.rindex("}") + 1])
        assert payload["span"] == worst_span(
            report.exemplars(payload["mechanism"]))
        doc = json.loads(open(trace_out).read())
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["span_count"] > 0

    def test_list_and_missing_id(self, report_path, capsys):
        from repro.tools.sloexplain import main

        _report, path = report_path
        assert main(["--list", "--report", path]) == 0
        assert "r-" in capsys.readouterr().out
        assert main(["r-999999999", "--report", path]) == 2
        assert main(["--report", path]) == 2  # no ID, no --worst, no --list

    def test_zero_residual_violation_exits_1(self, report_path, capsys):
        from repro.tools.sloexplain import main

        report, path = report_path
        doc = copy.deepcopy(report.doc)
        section = doc["mechanisms"]["native"]
        first_group = next(iter(section["exemplars"]["per_group"].values()))
        first_group[0]["stages"][3][1] += 1  # corrupt the remainder
        broken = str(path) + ".broken"
        with open(broken, "w") as fh:
            fh.write(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        assert main([first_group[0]["id"], "--report", broken]) == 1
        assert "ZERO-RESIDUAL" in capsys.readouterr().err


# --------------------------------------------------------- bus emission


class TestRequestSpanEvents:
    def test_record_emits_behind_null_sink_guard(self):
        from repro.observability import RequestSpan
        from repro.observability.bus import Bus
        from repro.observability.sinks import RingBufferSink

        bus = Bus()
        trace = TraceContext(server=2, tenant_names=TENANTS,
                             kind_names=KINDS, bus=bus)
        trace.record(index=4, conn=9, stage=1, tenant=1, kind=2,
                     arrival_ns=50, latency_ns=700, conn_wait_ns=200,
                     queue_ns=100, ts=123)
        # No sink attached: nothing emitted, nothing crashed.
        sink = RingBufferSink(capacity=8)
        bus.attach(sink)
        trace.record(index=5, conn=9, stage=1, tenant=0, kind=0,
                     arrival_ns=60, latency_ns=400, ts=456)
        events = [e for e in sink.events()
                  if isinstance(e, RequestSpan)]
        assert len(events) == 1
        event = events[0]
        assert event.request == "r-5" and event.server == 2
        assert event.admission_ns + event.conn_wait_ns + event.queue_ns \
            + event.service_ns == event.latency_ns
        assert event.ts == 456
