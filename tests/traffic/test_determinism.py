"""The headline guarantee: one seed, one report — byte for byte.

Across ``--jobs`` (shard counts), across engine tiers, across repeated
runs, for both serve modes.  These drive real kernels (calibration at
minimum), so configs are kept small; the 10^6-request scale is the
CLI's job, the *invariance* is proved here.
"""

import os

import pytest

import repro.traffic.fleet as fleet
from repro.traffic.config import TrafficConfig
from repro.traffic.engine import run_loadtest

TIER_HATCHES = ("REPRO_NO_BLOCK_CACHE", "REPRO_NO_CHAIN",
                "REPRO_NO_SUPERBLOCK", "REPRO_NO_TRACE_JIT")


def model_config(**kwargs):
    defaults = dict(requests=1200, servers=3, connections=48,
                    calibration_requests=12, workers=2, ramp=(1, 2, 8))
    defaults.update(kwargs)
    return TrafficConfig(**defaults)


def full_config(**kwargs):
    defaults = dict(requests=150, servers=2, connections=12,
                    calibration_requests=10, workers=2, ramp=(1, 4),
                    serve_mode="full")
    defaults.update(kwargs)
    return TrafficConfig(**defaults)


@pytest.fixture(autouse=True)
def fresh_calibration():
    """Each test measures its own service tables — cached tables from a
    different engine configuration would mask a tier-variance bug."""
    fleet._CALIBRATION_CACHE.clear()
    yield
    fleet._CALIBRATION_CACHE.clear()


def report_json(traffic, jobs=1, mechanisms=("native",), workload="redis",
                seed=23):
    return run_loadtest(list(mechanisms), workload, traffic, seed=seed,
                        jobs=jobs).to_json()


def test_model_mode_jobs_invariant():
    baseline = report_json(model_config(), jobs=1)
    for jobs in (2, 4):
        fleet._CALIBRATION_CACHE.clear()
        assert report_json(model_config(), jobs=jobs) == baseline, \
            f"--jobs {jobs} perturbed the SLO report"


def test_full_mode_jobs_invariant():
    baseline = report_json(full_config(), jobs=1)
    fleet._CALIBRATION_CACHE.clear()
    assert report_json(full_config(), jobs=2) == baseline


def test_model_mode_engine_tier_invariant():
    baseline = report_json(model_config())
    for hatch in TIER_HATCHES:
        fleet._CALIBRATION_CACHE.clear()
        os.environ[hatch] = "1"
        try:
            assert report_json(model_config()) == baseline, \
                f"{hatch}=1 perturbed the SLO report"
        finally:
            del os.environ[hatch]


def test_full_mode_reference_tier_invariant():
    """Full-serve mode retires every request on real kernels; the
    reference single-step interpreter must produce the same bytes."""
    baseline = report_json(full_config())
    fleet._CALIBRATION_CACHE.clear()
    os.environ["REPRO_NO_BLOCK_CACHE"] = "1"
    try:
        assert report_json(full_config()) == baseline
    finally:
        del os.environ["REPRO_NO_BLOCK_CACHE"]


def test_seed_changes_schedule_and_report():
    assert report_json(model_config(), seed=23) != \
        report_json(model_config(), seed=24)


def test_mechanisms_share_one_schedule():
    """Auto-rate resolution uses only the native calibration, so every
    mechanism is graded against the identical arrival schedule."""
    report = run_loadtest(["native", "zpoline-default"], "redis",
                          model_config(), seed=31)
    digest = report.doc["schedule"]["digest"]
    assert digest  # one digest, echoed once — shared by construction
    totals = [s["totals"]["offered"]
              for s in report.doc["mechanisms"].values()]
    assert totals[0] == totals[1] == 1200


def test_runconfig_traffic_roundtrip():
    from repro.runapi import RunConfig, run

    result = run(RunConfig(mechanism="native", workload="redis", seed=23,
                           traffic=model_config()))
    assert result.slo is not None
    assert result.requests == result.slo.total_completed()
    assert result.ok
