"""TrafficConfig validation and the RunConfig(traffic=...) seam."""

import pytest

from repro.runapi import RunConfig
from repro.traffic.config import TrafficConfig


def test_defaults_validate():
    config = TrafficConfig()
    assert config.requests == 1_000_000
    assert config.rate == 0  # auto
    assert config.serve_mode == "model"


@pytest.mark.parametrize("kwargs", [
    {"requests": 0},
    {"rate": -1},
    {"arrival": "uniform"},
    {"serve_mode": "turbo"},
    {"servers": 0},
    {"connections": 2},          # < servers (default 4)
    {"workers": 0},
    {"queue_limit": 0},
    {"calibration_requests": 0},
    {"slo_p99_ms": 0},
    {"tenants": ()},
    {"tenants": (("a", 1), ("a", 2))},
    {"mix": (("tiny", 1),)},
    {"mix": (("ghost:small", 1),)},   # unknown tenant scope
    {"mix": (("small", 0),)},
    {"ramp": ()},
    {"ramp": (1, 0)},
])
def test_invalid_configs_raise(kwargs):
    with pytest.raises(ValueError):
        TrafficConfig(**kwargs)


def test_sequences_canonicalized_to_tuples():
    config = TrafficConfig(tenants=[["a", 2], ["b", 1]],
                           mix=[["small", 1]], ramp=[1, 2])
    assert config.tenants == (("a", 2), ("b", 1))
    assert config.mix == (("small", 1),)
    assert config.ramp == (1, 2)


def test_mix_for_scoped_entries_win():
    config = TrafficConfig(
        tenants=(("anchor", 4), ("batch", 1)),
        mix=(("small", 3), ("large", 1), ("batch:large", 1)))
    assert config.mix_for("anchor") == (("small", 3), ("large", 1))
    assert config.mix_for("batch") == (("large", 1),)


def test_canonical_requires_resolved_rate():
    with pytest.raises(ValueError):
        TrafficConfig().canonical()


def test_canonical_roundtrip():
    config = TrafficConfig(rate=5000, requests=100, arrival="pareto",
                           ramp=(1, 3))
    doc = config.canonical()
    assert TrafficConfig.from_dict(doc) == config
    assert doc["rate"] == 5000


def test_with_rate_resolves_auto():
    resolved = TrafficConfig().with_rate(1234)
    assert resolved.rate == 1234
    assert resolved.requests == 1_000_000


def test_runconfig_accepts_traffic_dict():
    config = RunConfig(mechanism="native", workload="nginx",
                       traffic={"requests": 100, "rate": 50})
    assert isinstance(config.traffic, TrafficConfig)
    assert config.traffic.requests == 100


def test_runconfig_traffic_needs_server_workload():
    with pytest.raises(ValueError, match="server workload"):
        RunConfig(mechanism="native", workload="stress",
                  traffic=TrafficConfig())


def test_runconfig_traffic_excludes_replay():
    with pytest.raises(ValueError, match="mutually exclusive"):
        RunConfig(mechanism="native", workload="redis",
                  traffic=TrafficConfig(), replay_from="/tmp/bundle")


def test_runconfig_traffic_rejects_garbage():
    with pytest.raises(ValueError, match="TrafficConfig"):
        RunConfig(mechanism="native", workload="redis", traffic="lots")
