"""Arrival-schedule determinism: same seed, byte-identical columns."""

import pytest

from repro.traffic.config import TrafficConfig
from repro.traffic.schedule import generate_schedule, schedule_summary


def small(**kwargs):
    defaults = dict(requests=2000, rate=100_000, servers=4,
                    connections=64, ramp=(1, 2, 4))
    defaults.update(kwargs)
    return TrafficConfig(**defaults)


def test_same_seed_same_digest():
    a = generate_schedule(small(), 42)
    b = generate_schedule(small(), 42)
    assert a.digest() == b.digest()
    assert a.t_ns == b.t_ns and a.conn == b.conn


def test_different_seed_different_digest():
    assert generate_schedule(small(), 1).digest() != \
        generate_schedule(small(), 2).digest()


def test_unresolved_rate_rejected():
    with pytest.raises(ValueError, match="resolved rate"):
        generate_schedule(TrafficConfig(), 1)


def test_arrivals_monotonic_and_connections_in_range():
    schedule = generate_schedule(small(), 7)
    last = 0
    for i in range(len(schedule)):
        assert schedule.t_ns[i] >= last
        last = schedule.t_ns[i]
        assert 0 <= schedule.conn[i] < 64


@pytest.mark.parametrize("arrival", ["poisson", "lognormal", "pareto"])
def test_every_arrival_process_generates(arrival):
    schedule = generate_schedule(small(arrival=arrival), 3)
    assert len(schedule) == 2000
    assert schedule.span_ns() > 0


def test_stage_bounds_partition_requests():
    schedule = generate_schedule(small(), 5)
    bounds = schedule.stage_bounds()
    assert bounds[0][0] == 0 and bounds[-1][1] == len(schedule)
    for (_, end), (start, _) in zip(bounds, bounds[1:]):
        assert end == start
    for stage, (start, end) in enumerate(bounds):
        assert schedule.stage_of(start) == stage
        assert schedule.stage_of(end - 1) == stage


def test_ramp_speeds_up_arrivals():
    """Later (higher-multiplier) stages pack the same requests into less
    wall time: mean gap shrinks roughly with the multiplier."""
    schedule = generate_schedule(small(ramp=(1, 8)), 11)
    (s0, e0), (s1, e1) = schedule.stage_bounds()
    span0 = schedule.t_ns[e0 - 1] - schedule.t_ns[s0]
    span1 = schedule.t_ns[e1 - 1] - schedule.t_ns[s1]
    assert span1 * 3 < span0


def test_server_sharding_covers_all_requests():
    schedule = generate_schedule(small(), 9)
    total = sum(1 for s in range(4)
                for _ in schedule.iter_requests(s))
    assert total == len(schedule)


def test_tenant_weights_respected():
    config = small(requests=4000, tenants=(("heavy", 9), ("light", 1)))
    schedule = generate_schedule(config, 13)
    heavy = schedule.tenant_names.index("heavy")
    count = sum(1 for i in range(len(schedule))
                if schedule.tenant[i] == heavy)
    assert 0.8 < count / len(schedule) < 0.98


def test_summary_echo():
    schedule = generate_schedule(small(), 21)
    doc = schedule_summary(schedule)
    assert doc["requests"] == 2000
    assert doc["digest"] == schedule.digest()
    assert [row["rate"] for row in doc["stages"]] == \
        [100_000, 200_000, 400_000]
