"""Multi-connection serving: the event-loop worker path behind the
``multiconn`` installer flag, which the full-serve traffic engine rides.
"""

import pytest

from repro.runapi import RunConfig, prepare


def boot(workload, mechanism="native", multiconn=True, workers=2):
    params = [("workers", workers)]
    if multiconn:
        params.append(("multiconn", 1))
    prepared = prepare(RunConfig(mechanism=mechanism, workload=workload,
                                 seed=9, params=tuple(params)))
    prepared.boot()
    return prepared


@pytest.mark.parametrize("workload", ["nginx", "lighttpd", "redis"])
def test_multiconn_serves_many_connections(workload):
    prepared = boot(workload)
    kernel, spec = prepared.kernel, prepared.spec
    expected = 32 if workload == "redis" else 128
    conns = []
    for _ in range(6):
        conns.append(kernel.net.connect(spec.port))
    kernel.run(max_steps=600_000)
    # Interleave: every connection gets a request before any second one.
    for conn in conns:
        conn.client_send(spec.payload)
    kernel.run(max_steps=2_000_000)
    for conn in conns:
        response = conn.client_recv_all()
        assert len(response) == expected, \
            f"{workload}: connection answered {len(response)}B"


@pytest.mark.parametrize("workload", ["nginx", "redis"])
def test_multiconn_connection_close_keeps_serving(workload):
    prepared = boot(workload)
    kernel, spec = prepared.kernel, prepared.spec
    first = kernel.net.connect(spec.port)
    second = kernel.net.connect(spec.port)
    kernel.run(max_steps=600_000)
    first.client_send(spec.payload)
    kernel.run(max_steps=1_000_000)
    assert first.client_recv_all()
    first.client_close()
    kernel.run(max_steps=600_000)
    second.client_send(spec.payload)
    kernel.run(max_steps=1_000_000)
    assert second.client_recv_all()


def test_classic_path_untouched_without_flag():
    """No multiconn param: the classic accept-one-connection loop, which
    the calibrated macro benchmarks measure, still serves."""
    prepared = boot("redis", multiconn=False, workers=1)
    kernel, spec = prepared.kernel, prepared.spec
    conn = kernel.net.connect(spec.port)
    kernel.run(max_steps=600_000)
    conn.client_send(spec.payload)
    kernel.run(max_steps=1_000_000)
    assert len(conn.client_recv_all()) == 32


@pytest.mark.parametrize("mechanism", ["zpoline-default", "K23-ultra"])
def test_multiconn_under_interposition(mechanism):
    prepared = boot("nginx", mechanism=mechanism)
    kernel, spec = prepared.kernel, prepared.spec
    conns = [kernel.net.connect(spec.port) for _ in range(3)]
    kernel.run(max_steps=600_000)
    for conn in conns:
        conn.client_send(spec.payload)
    kernel.run(max_steps=3_000_000)
    assert all(len(c.client_recv_all()) == 128 for c in conns)
