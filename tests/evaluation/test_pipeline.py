"""Pipeline tests: parallel-vs-serial equivalence, cache-key semantics,
memoization hit accounting, and graceful degradation of failing cells.

The full Table 5/6 matrix is benchmark territory; here every matrix is
reduced (two or three mechanisms, tiny iteration counts, one macro row) so
tier-1 stays fast while still exercising the pool, the cache, and the
deterministic merge end to end.
"""

import pytest

from repro.cpu.cycles import DEFAULT_COSTS, Event
from repro.evaluation import experiments
from repro.evaluation import pipeline as pipe
from repro.evaluation.cache import (
    MISS,
    NullCache,
    ResultCache,
    cell_key,
    module_source_digest,
    source_digest,
)
from repro.evaluation.tables import render_table5

MECHS = ("native", "zpoline-default", "SUD-no-interposition")
MICRO = dict(iterations_low=60, iterations_high=240)


def reduced_micro_specs(mechanisms=MECHS):
    return pipe.micro_specs(mechanisms, **MICRO)


# ----------------------------------------------------------- equivalence


class TestEquivalence:
    def test_parallel_and_serial_micro_text_identical(self):
        specs = reduced_micro_specs()
        serial = pipe.run_cells(specs, jobs=1, cache=None)
        parallel = pipe.run_cells(specs, jobs=3, cache=None)
        text_serial = render_table5(pipe.table5_overheads(serial, MECHS[1:]))
        text_parallel = render_table5(
            pipe.table5_overheads(parallel, MECHS[1:]))
        assert text_serial == text_parallel

    def test_pipeline_matches_legacy_serial_table6(self):
        """The pipeline's Table 6 text is byte-identical to the original
        in-process serial path for the same row."""
        legacy = experiments.run_table6_serial(["redis-1t"])
        piped = experiments.run_table6(["redis-1t"], jobs=2)
        assert piped == legacy

    def test_merge_is_order_independent(self):
        specs = reduced_micro_specs()
        forward = pipe.run_cells(specs, jobs=1, cache=None)
        backward = pipe.run_cells(list(reversed(specs)), jobs=1, cache=None)
        assert (pipe.table5_overheads(forward, MECHS[1:])
                == pipe.table5_overheads(backward, MECHS[1:]))

    def test_shard_count_never_perturbs_artifact_bytes(self):
        """--jobs N byte-identity: every shard width renders the same
        table text as the serial run."""
        specs = reduced_micro_specs()
        reference = render_table5(pipe.table5_overheads(
            pipe.run_cells(specs, jobs=1, cache=None), MECHS[1:]))
        for jobs in (2, 3, 5):
            run = pipe.run_cells(specs, jobs=jobs, cache=None)
            assert render_table5(
                pipe.table5_overheads(run, MECHS[1:])) == reference


class TestSharding:
    def test_round_robin_deal_is_deterministic(self):
        specs = reduced_micro_specs()
        first = pipe.shard_specs(specs, 2)
        again = pipe.shard_specs(list(specs), 2)
        assert first == again
        assert first[0] == specs[0::2]
        assert first[1] == specs[1::2]

    def test_shards_partition_without_loss_or_dup(self):
        specs = reduced_micro_specs()
        for jobs in (1, 2, 3, 7):
            shards = pipe.shard_specs(specs, jobs)
            flat = [spec for shard in shards for spec in shard]
            assert sorted(flat, key=id) == sorted(specs, key=id)
            assert all(shard for shard in shards)
            assert len(shards) <= max(1, jobs)

    def test_more_jobs_than_cells_drops_empty_shards(self):
        specs = reduced_micro_specs()[:2]
        shards = pipe.shard_specs(specs, 8)
        assert len(shards) == 2
        assert pipe.shard_specs([], 4) == []

    def test_micro_cell_matches_direct_measurement(self):
        from repro.evaluation.runner import measure_micro_cycles

        spec = reduced_micro_specs(("zpoline-default",))[0]
        value = pipe.execute_cell(spec)
        direct = measure_micro_cycles("zpoline-default", seed=20, **MICRO)
        assert value["cycles_per_call"] == direct


# ----------------------------------------------------------------- caching


class TestMemoization:
    def test_second_run_hits_cache_for_every_cell(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = reduced_micro_specs()
        first = pipe.run_cells(specs, jobs=2, cache=cache)
        assert first.stats.misses == len(specs)
        assert first.stats.hits == 0
        second = pipe.run_cells(specs, jobs=2, cache=cache)
        assert second.stats.hits == len(specs)
        assert second.stats.misses == 0
        assert (pipe.table5_overheads(first, MECHS[1:])
                == pipe.table5_overheads(second, MECHS[1:]))
        assert "cache hits" in second.stats.summary()

    def test_cached_values_survive_json_roundtrip_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = reduced_micro_specs(("native",))[0]
        uncached = pipe.run_cells([spec], cache=cache)
        cached = pipe.run_cells([spec], cache=cache)
        assert cached.results[spec].source == "cache"
        assert (cached.results[spec].value["cycles_per_call"]
                == uncached.results[spec].value["cycles_per_call"])

    def test_null_cache_never_hits(self):
        cache = NullCache()
        cache.put("k", {"v": 1})
        assert cache.get("k") is MISS
        assert len(cache) == 0

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("abc", {"v": 1})
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get("abc") is MISS


class TestCacheKeys:
    def test_constant_change_invalidates_exactly_affected_cells(
            self, monkeypatch):
        """Bumping HASHSET_CHECK must re-key the K23-ultra cells (their
        entry check performs the probe) and nothing else."""
        before = {name: cell_key("micro", name, "syscall-stress", 20)
                  for name in ("zpoline-default", "K23-default",
                               "K23-ultra", "K23-ultra+")}
        monkeypatch.setitem(DEFAULT_COSTS, Event.HASHSET_CHECK,
                            DEFAULT_COSTS[Event.HASHSET_CHECK] + 1)
        after = {name: cell_key("micro", name, "syscall-stress", 20)
                 for name in before}
        assert after["K23-ultra"] != before["K23-ultra"]
        assert after["K23-ultra+"] != before["K23-ultra+"]
        assert after["zpoline-default"] == before["zpoline-default"]
        assert after["K23-default"] == before["K23-default"]

    def test_baseline_constant_change_invalidates_every_cell(
            self, monkeypatch):
        names = ("native", "zpoline-default", "SUD")
        before = {name: cell_key("micro", name, "syscall-stress", 20)
                  for name in names}
        monkeypatch.setitem(DEFAULT_COSTS, Event.KERNEL_SYSCALL,
                            DEFAULT_COSTS[Event.KERNEL_SYSCALL] + 1)
        after = {name: cell_key("micro", name, "syscall-stress", 20)
                 for name in names}
        for name in names:
            assert after[name] != before[name]

    def test_comment_only_edit_does_not_change_source_digest(self):
        base = "def f(x):\n    return x + 1\n"
        commented = ("# a new comment explaining f\n"
                     "def f(x):\n"
                     "    return x + 1  # trailing note\n")
        semantic = "def f(x):\n    return x + 2\n"
        assert source_digest(base) == source_digest(commented)
        assert source_digest(base) != source_digest(semantic)

    def test_module_digest_is_stable_and_real(self):
        first = module_source_digest("repro.workloads.stress")
        second = module_source_digest("repro.workloads.stress")
        assert first == second
        assert len(first) == 64

    def test_distinct_cells_get_distinct_keys(self):
        micro = cell_key("micro", "SUD", "syscall-stress", 20)
        macro = cell_key("macro", "SUD", "redis-1t", 30)
        other_seed = cell_key("micro", "SUD", "syscall-stress", 21)
        assert len({micro, macro, other_seed}) == 3

    def test_unknown_mechanism_rejected(self):
        from repro.interposers import UnknownMechanismError

        with pytest.raises(UnknownMechanismError):
            cell_key("micro", "frobnicator", "syscall-stress", 20)


# ------------------------------------------------------------- degradation


class TestFailureHandling:
    def test_failed_cell_captures_traceback_and_rest_complete(self):
        good = reduced_micro_specs(("native", "zpoline-default"))
        bad = pipe.ScenarioSpec("macro", "zpoline-default", "no-such-row", 30)
        run = pipe.run_cells(good + [bad], jobs=2, cache=None)
        assert run.stats.failures == 1
        failed = run.results[bad]
        assert not failed.ok
        assert "unknown macro workload" in failed.error
        assert "Traceback" in failed.error
        for spec in good:
            assert run.results[spec].ok

    def test_unknown_mechanism_cell_fails_gracefully(self):
        good = reduced_micro_specs(("native",))
        bad = pipe.ScenarioSpec("micro", "frobnicator", "syscall-stress", 20,
                                (("iterations_high", 240),
                                 ("iterations_low", 60)))
        run = pipe.run_cells(good + [bad], jobs=2, cache=None)
        assert run.results[good[0]].ok
        assert not run.results[bad].ok
        assert "frobnicator" in run.results[bad].error

    def test_consuming_failed_cell_raises_cell_failure(self):
        bad = pipe.ScenarioSpec("nonsense", "native", "x", 1)
        run = pipe.run_cells([bad], jobs=1, cache=None)
        with pytest.raises(pipe.CellFailure) as excinfo:
            run.value(bad)
        assert "nonsense" in str(excinfo.value)

    def test_serial_fallback_still_completes(self, monkeypatch):
        """A pool that cannot even be created degrades to serial."""

        def broken_pool(*args, **kwargs):
            raise PermissionError("no semaphores in this sandbox")

        import concurrent.futures

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            broken_pool)
        specs = reduced_micro_specs(("native", "zpoline-default"))
        run = pipe.run_cells(specs, jobs=4, cache=None)
        assert run.stats.mode == "serial"
        assert run.stats.fallback_reason is not None
        assert all(result.ok for result in run.results.values())


# ------------------------------------------------------------- enumeration


class TestEnumeration:
    def test_full_matrix_dimensions(self):
        from repro.evaluation.runner import MACRO_CONFIGS
        from repro.interposers.registry import REGISTRY

        MECHANISMS = REGISTRY.names()

        specs = pipe.full_matrix_specs()
        micro = [s for s in specs if s.kind == "micro"]
        macro = [s for s in specs if s.kind == "macro"]
        assert len(micro) == len(MECHANISMS)
        assert len(macro) == len(MECHANISMS) * len(MACRO_CONFIGS)

    def test_smoke_matrix_is_tiny(self):
        specs = pipe.full_matrix_specs(smoke=True)
        assert {s.mechanism for s in specs} == set(pipe.SMOKE_MECHANISMS)
        assert len(specs) == (len(pipe.SMOKE_MECHANISMS)
                              * (1 + len(pipe.SMOKE_MACRO_KEYS)))

    def test_specs_are_picklable_and_hashable(self):
        import pickle

        specs = pipe.full_matrix_specs(smoke=True)
        assert pickle.loads(pickle.dumps(specs)) == specs
        assert len(set(specs)) == len(specs)

    def test_duplicate_specs_run_once(self):
        spec = reduced_micro_specs(("native",))[0]
        run = pipe.run_cells([spec, spec, spec], jobs=1, cache=None)
        assert len(run.results) == 1
        assert run.stats.cells == 1
