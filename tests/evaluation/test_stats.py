"""Statistics pipeline tests (§6.2 methodology)."""

import math

import pytest

from repro.evaluation.stats import (
    RepeatedMeasurement,
    drop_outliers,
    geomean,
    ratio_measurement,
    std_percent,
)


def test_geomean_basic():
    assert geomean([2, 8]) == pytest.approx(4.0)
    assert geomean([5]) == pytest.approx(5.0)


def test_geomean_empty_raises():
    with pytest.raises(ValueError):
        geomean([])


def test_drop_outliers_removes_min_and_max():
    assert sorted(drop_outliers([5, 1, 3, 9, 4])) == [3, 4, 5]


def test_drop_outliers_small_sequences_untouched():
    assert drop_outliers([1, 2]) == [1, 2]


def test_std_percent():
    assert std_percent([10, 10, 10]) == 0.0
    assert std_percent([10]) == 0.0
    assert std_percent([9, 10, 11]) == pytest.approx(10.0)


class TestRepeatedMeasurement:
    def test_ten_runs_eight_kept(self):
        cell = RepeatedMeasurement(100.0, runs=10, seed=1)
        assert len(cell.samples) == 10
        assert len(cell.kept) == 8

    def test_geomean_close_to_value(self):
        cell = RepeatedMeasurement(1.2788, runs=10, sigma=0.0005, seed=2)
        assert cell.geomean == pytest.approx(1.2788, rel=0.002)

    def test_std_pct_matches_sigma_scale(self):
        cell = RepeatedMeasurement(100.0, runs=10, sigma=0.0005, seed=3)
        assert 0.0 < cell.std_pct < 0.2

    def test_seeded_determinism(self):
        a = RepeatedMeasurement(7.0, seed=9)
        b = RepeatedMeasurement(7.0, seed=9)
        assert a.samples == b.samples
        c = RepeatedMeasurement(7.0, seed=10)
        assert a.samples != c.samples

    def test_ratio_measurement(self):
        cell = ratio_measurement(128.0, 100.0, seed=4)
        assert cell.geomean == pytest.approx(1.28, rel=0.01)
