"""Table-renderer unit tests (synthetic inputs; no heavy measurement)."""

import pytest

from repro.evaluation.tables import (
    PAPER_TABLE2,
    PAPER_TABLE5,
    render_table2,
    render_table5,
    render_table6,
)


def test_render_table2_includes_paper_column():
    text = render_table2({"/usr/bin/ls": 10, "/custom/thing": 5})
    assert "| 10" in text and "ls" in text
    assert "thing" in text and "| -" in text  # unknown app: no paper value


def test_render_table5_reports_geomean_and_std():
    overheads = dict(PAPER_TABLE5)  # feed the paper's own values
    text = render_table5(overheads)
    for name in PAPER_TABLE5:
        assert name in text
    assert "+/-" in text


def test_render_table5_noise_is_seeded():
    text_a = render_table5(dict(PAPER_TABLE5), seed=5)
    text_b = render_table5(dict(PAPER_TABLE5), seed=5)
    text_c = render_table5(dict(PAPER_TABLE5), seed=6)
    assert text_a == text_b
    assert text_a != text_c


def _rows():
    return [
        {"label": "appA (x)", "native": 100000.0,
         "relative": {"zpoline-default": 99.0, "SUD": 50.0},
         "paper_relative": {"zpoline-default": 98.5, "SUD": 51.0}},
        {"label": "appB (y)", "native": None,
         "relative": {"zpoline-default": 97.0, "SUD": 60.0},
         "paper_relative": None},
    ]


def test_render_table6_structure():
    text = render_table6(_rows())
    assert "appA (x)" in text and "appB (y)" in text
    assert "100,000" in text
    assert "N/A" in text          # appB has no native figure
    assert "geomean" in text
    assert "/98.50" in text       # the paper column where available


def test_render_table6_geomean_row():
    text = render_table6(_rows())
    geomean_line = [line for line in text.splitlines()
                    if line.startswith("geomean")][0]
    # geomean(99, 97) ≈ 98.0, geomean(50, 60) ≈ 54.77 (within noise)
    assert " 9" in geomean_line and "5" in geomean_line
