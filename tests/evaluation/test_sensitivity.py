"""Sensitivity-analysis tests: the analytic model matches the simulator at
the calibration point, and the paper's orderings survive perturbation."""

import pytest

from repro.cpu.cycles import DEFAULT_COSTS
from repro.evaluation.runner import measure_micro_cycles
from repro.evaluation.sensitivity import (
    MULTIPLIERS,
    SWEPT_CONSTANTS,
    analytic_micro,
    invariants_hold,
    render_sweep,
    sweep,
)


@pytest.mark.parametrize("mechanism", [
    "native", "zpoline-default", "zpoline-ultra", "lazypoline",
    "K23-default", "K23-ultra", "K23-ultra+", "SUD-no-interposition", "SUD",
])
def test_analytic_model_matches_simulator(mechanism):
    """The closed-form per-call cost agrees with the measured simulator to
    within a couple of cycles (the model's purpose: trustworthy sweeps)."""
    analytic = analytic_micro(DEFAULT_COSTS)[mechanism]
    measured = measure_micro_cycles(mechanism)
    assert analytic == pytest.approx(measured, abs=4)


def test_invariants_hold_at_calibration_point():
    assert invariants_hold(analytic_micro(DEFAULT_COSTS)) == []


def test_sweep_covers_declared_grid():
    results = sweep()
    assert len(results) == len(SWEPT_CONSTANTS) * len(MULTIPLIERS)


def test_orderings_survive_halving_and_doubling():
    """The headline robustness claim: no ordering invariant breaks when any
    single calibrated constant is halved or doubled."""
    for event, multiplier, violations in sweep():
        assert violations == [], (event, multiplier, violations)


def test_render_reports_clean_sweep():
    text = render_sweep(sweep())
    assert "all invariants hold at every point." in text
