"""Experiment-CLI tests (python -m repro.evaluation.experiments)."""

import pytest

from repro.evaluation.experiments import main, run_table4


def test_help(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "table5" in out and "figure3" in out


def test_unknown_target(capsys):
    assert main(["table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().out


def test_table4(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "K23-ultra+" in out


def test_figure1(capsys):
    assert main(["figure1"]) == 0
    out = capsys.readouterr().out
    assert "partial instruction" in out


def test_figure3(capsys):
    assert main(["figure3"]) == 0
    out = capsys.readouterr().out
    assert "ls.log" in out and "libc.so.6," in out


def test_table6_single_row(capsys):
    assert main(["table6", "redis-1t"]) == 0
    out = capsys.readouterr().out
    assert "redis (1 I/O thread)" in out
    assert "geomean" in out


def test_table6_unknown_row(capsys):
    assert main(["table6", "minecraft"]) == 2
    assert "unknown table6 row" in capsys.readouterr().out
