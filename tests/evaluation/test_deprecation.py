"""The deprecation shims: ``MECHANISMS`` / ``make_interposer`` still work
from ``repro.evaluation.runner`` (and ``repro.evaluation``) but warn —
exactly once per process per attribute — and point at ``repro.api``."""

import warnings

import pytest

from repro.interposers.registry import REGISTRY
from repro.kernel import Kernel


@pytest.fixture(autouse=True)
def _reset_warned():
    """Each test sees a fresh warn-once state."""
    import repro.evaluation.runner as runner

    runner._WARNED.clear()
    yield
    runner._WARNED.clear()


def test_mechanisms_import_warns_and_matches_registry():
    import repro.evaluation.runner as runner

    with pytest.warns(DeprecationWarning, match="repro.api"):
        mechanisms = runner.MECHANISMS
    assert tuple(mechanisms) == tuple(REGISTRY.names())


def test_from_import_fires_the_warning():
    with pytest.warns(DeprecationWarning):
        from repro.evaluation.runner import MECHANISMS  # noqa: F401


def test_warns_exactly_once_per_process():
    """The second access must be silent — legacy hot loops must not
    flood stderr — while still returning the value."""
    import repro.evaluation.runner as runner

    with pytest.warns(DeprecationWarning):
        first = runner.MECHANISMS
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        again = runner.MECHANISMS
    assert tuple(first) == tuple(again)


def test_each_attribute_warns_independently():
    import repro.evaluation.runner as runner

    with pytest.warns(DeprecationWarning, match="MECHANISMS"):
        runner.MECHANISMS
    # MECHANISMS is spent, but make_interposer still owes its warning.
    with pytest.warns(DeprecationWarning, match="make_interposer"):
        runner.make_interposer


def test_make_interposer_warns_and_still_builds():
    import repro.evaluation.runner as runner

    with pytest.warns(DeprecationWarning, match="REGISTRY.create"):
        factory = runner.make_interposer
    interposer = factory("native", Kernel(seed=5))
    assert interposer is not None


def test_warning_text_points_at_api_surface():
    import repro.evaluation.runner as runner

    with pytest.warns(DeprecationWarning) as captured:
        runner.MECHANISMS
    assert "repro.api" in str(captured[0].message)


def test_package_level_shim_forwards():
    import repro.evaluation as evaluation

    with pytest.warns(DeprecationWarning):
        mechanisms = evaluation.MECHANISMS
    assert tuple(mechanisms) == tuple(REGISTRY.names())


def test_internal_modules_do_not_warn():
    """Every in-repo consumer was migrated to the registry: importing the
    evaluation stack must not trip the shim."""
    import importlib

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        for module in ("repro.evaluation.pipeline",
                       "repro.evaluation.conformance",
                       "repro.evaluation.experiments",
                       "repro.evaluation.report",
                       "repro.tools.evalrun",
                       "repro.tools.simtrace",
                       "repro.tools.shadow",
                       "repro.runapi",
                       "repro.shadow.harness"):
            importlib.reload(importlib.import_module(module))


def test_unknown_attribute_still_raises():
    import repro.evaluation.runner as runner

    with pytest.raises(AttributeError):
        runner.frobnicate
