"""The deprecation shims: ``MECHANISMS`` / ``make_interposer`` still work
from ``repro.evaluation.runner`` (and ``repro.evaluation``) but warn and
point at the registry."""

import warnings

import pytest

from repro.interposers.registry import REGISTRY
from repro.kernel import Kernel


def test_mechanisms_import_warns_and_matches_registry():
    import repro.evaluation.runner as runner

    with pytest.warns(DeprecationWarning, match="REGISTRY.names"):
        mechanisms = runner.MECHANISMS
    assert tuple(mechanisms) == tuple(REGISTRY.names())


def test_from_import_fires_the_warning():
    with pytest.warns(DeprecationWarning):
        from repro.evaluation.runner import MECHANISMS  # noqa: F401


def test_make_interposer_warns_and_still_builds():
    import repro.evaluation.runner as runner

    with pytest.warns(DeprecationWarning, match="REGISTRY.create"):
        factory = runner.make_interposer
    interposer = factory("native", Kernel(seed=5))
    assert interposer is not None


def test_package_level_shim_forwards():
    import repro.evaluation as evaluation

    with pytest.warns(DeprecationWarning):
        mechanisms = evaluation.MECHANISMS
    assert tuple(mechanisms) == tuple(REGISTRY.names())


def test_internal_modules_do_not_warn():
    """Every in-repo consumer was migrated to the registry: importing the
    evaluation stack must not trip the shim."""
    import importlib

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        for module in ("repro.evaluation.pipeline",
                       "repro.evaluation.conformance",
                       "repro.evaluation.experiments",
                       "repro.evaluation.report",
                       "repro.tools.evalrun",
                       "repro.tools.simtrace"):
            importlib.reload(importlib.import_module(module))


def test_unknown_attribute_still_raises():
    import repro.evaluation.runner as runner

    with pytest.raises(AttributeError):
        runner.frobnicate
