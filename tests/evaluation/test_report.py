"""Report-generator smoke test (heavy sub-experiments stubbed)."""

import io

import pytest

import repro.evaluation.report as report_mod
from repro.evaluation.tables import PAPER_TABLE5


def test_generate_report_structure(monkeypatch):
    from repro.evaluation import experiments
    from repro.pitfalls import matrix as matrix_mod
    from repro.pitfalls.poc import PitfallOutcome

    monkeypatch.setattr(experiments, "run_table2", lambda: "TABLE2-STUB")
    monkeypatch.setattr(experiments, "run_table6",
                        lambda **kwargs: "TABLE6-STUB")
    for number in (1, 2, 3, 4):
        monkeypatch.setattr(experiments, f"run_figure{number}",
                            lambda n=number: f"FIGURE{n}-STUB")
    outcomes = [PitfallOutcome(p, name, expected, "stub")
                for p, row in matrix_mod.PAPER_TABLE3.items()
                for name, expected in row.items()]
    monkeypatch.setattr(report_mod.pipe, "run_cells",
                        lambda specs, jobs=1, cache=None: "RUN-STUB")
    monkeypatch.setattr(report_mod.pipe, "table5_overheads",
                        lambda run, mechanisms: dict(PAPER_TABLE5))
    import repro.pitfalls as pitfalls_pkg

    monkeypatch.setattr(pitfalls_pkg, "pitfall_matrix", lambda: outcomes)

    stream = io.StringIO()
    text = report_mod.generate_report(out=stream)
    assert text == stream.getvalue()
    for marker in ("TABLE2-STUB", "TABLE6-STUB", "FIGURE3-STUB",
                   "Matches the paper exactly: **True**",
                   "Worst per-row deviation"):
        assert marker in text


def test_config_variant_specs():
    from repro.core.config import K23_VARIANTS, ZPOLINE_VARIANTS

    names = [spec.name for spec in ZPOLINE_VARIANTS + K23_VARIANTS]
    assert names == ["zpoline-default", "zpoline-ultra", "K23-default",
                     "K23-ultra", "K23-ultra+"]
    ultra_plus = K23_VARIANTS[-1]
    assert ultra_plus.extra_features == ("NULL Execution Check",
                                         "Stack Switch")
    assert "security" in ultra_plus.suited_for
