"""The bench-history regression gate.

The gate must pass on the repo's committed ledger, demonstrably fail on
a synthetic 20% slowdown, and never compare numbers across machines,
protocols, or interpreter modes.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def history():
    spec = importlib.util.spec_from_file_location(
        "bench_history", REPO / "benchmarks" / "history.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _entry(history, insns_per_sec, workload="syscall-stress",
           mode="block-cache", node="ci", protocol="best of 3 rounds"):
    return {
        "schema_version": history.SCHEMA_VERSION,
        "timestamp": "2026-08-05T00:00:00+00:00",
        "machine": {"node": node, "machine": "x86_64", "python": "3.11"},
        "protocol": protocol,
        "workload": workload,
        "mode": mode,
        "insns_per_sec": insns_per_sec,
        "sim_cycles": 1000,
        "instructions": 1000,
    }


class TestGate:
    def test_committed_ledger_passes(self, history):
        entries = history.load_history()
        assert entries, "repo ships a seeded BENCH_history.jsonl"
        ok, lines = history.gate(entries)
        assert ok, "\n".join(lines)

    def test_synthetic_20pct_slowdown_fails(self, history):
        entries = [_entry(history, 1_000_000) for _ in range(5)]
        entries.append(_entry(history, 800_000))  # 20% below the median
        ok, lines = history.gate(entries)
        assert not ok
        assert any(line.startswith("FAIL") for line in lines)
        assert any("20.0% below" in line for line in lines)

    def test_within_threshold_passes(self, history):
        entries = [_entry(history, 1_000_000) for _ in range(5)]
        entries.append(_entry(history, 950_000))  # -5%: inside the 10% gate
        ok, lines = history.gate(entries)
        assert ok

    def test_median_robust_to_one_noisy_prior(self, history):
        # One historically slow outlier must not drag the median down
        # enough to mask a real regression.
        entries = [_entry(history, 1_000_000) for _ in range(4)]
        entries.append(_entry(history, 100_000))   # noise spike
        entries.append(_entry(history, 800_000))   # real 20% regression
        ok, _lines = history.gate(entries)
        assert not ok

    def test_thin_group_skips_explicitly(self, history):
        # One or two samples: no meaningful median, explicit SKIP verdict
        # (never a silent PASS, never a FAIL).
        for count in (1, 2):
            entries = [_entry(history, 123) for _ in range(count)]
            ok, lines = history.gate(entries)
            assert ok
            assert any(line.startswith("SKIP") for line in lines)
            assert any(f"need {history.MIN_SAMPLES} to gate" in line
                       for line in lines)
            assert not any(line.startswith("PASS") for line in lines)

    def test_min_samples_boundary_grades(self, history):
        # Exactly MIN_SAMPLES entries: the group is graded, not skipped.
        entries = [_entry(history, 1_000_000),
                   _entry(history, 1_000_000),
                   _entry(history, 500_000)]
        ok, lines = history.gate(entries)
        assert not ok
        assert any(line.startswith("FAIL") for line in lines)

    def test_groups_never_mix_machines_or_modes(self, history):
        # Fast history on machine A, slow first entry on machine B: not a
        # regression — the new group SKIPs while it warms up.  Same for a
        # new interpreter mode or protocol.
        entries = [_entry(history, 1_000_000) for _ in range(3)]
        entries.append(_entry(history, 100_000, node="laptop"))
        entries.append(_entry(history, 100_000, mode="single-step"))
        entries.append(_entry(history, 100_000, protocol="best of 1 rounds"))
        ok, lines = history.gate(entries)
        assert ok, "\n".join(lines)
        assert sum(1 for line in lines if line.startswith("SKIP")) == 3
        assert sum(1 for line in lines if line.startswith("PASS")) == 1

    def test_machine_tag_change_mid_ledger_skips(self, history):
        # A machine rename splits the group: the old node's history must
        # not grade the new node's first runs, and neither side FAILs.
        entries = [_entry(history, 1_000_000, node="old-ci")
                   for _ in range(5)]
        entries += [_entry(history, 400_000, node="new-ci")
                    for _ in range(2)]
        ok, lines = history.gate(entries)
        assert ok, "\n".join(lines)
        assert any(line.startswith("SKIP") and "@new-ci" in line
                   for line in lines)
        assert any(line.startswith("PASS") and "@old-ci" in line
                   for line in lines)

    def test_unknown_schema_version_ignored(self, history):
        stale = _entry(history, 10)
        stale["schema_version"] = history.SCHEMA_VERSION + 1
        entries = [stale] + [_entry(history, 1_000_000) for _ in range(3)]
        ok, lines = history.gate(entries)
        assert ok
        # The stale line fed neither the median nor the sample count.
        assert any(line.startswith("PASS") and "2 prior" not in line
                   for line in lines)

    def test_malformed_lines_reported_not_fatal(self, history):
        broken = _entry(history, 1_000_000)
        del broken["insns_per_sec"]
        nonnum = _entry(history, 1_000_000)
        nonnum["insns_per_sec"] = "fast"
        entries = [broken, nonnum] + [_entry(history, 1_000_000)
                                      for _ in range(3)]
        ok, lines = history.gate(entries)
        assert ok, "\n".join(lines)
        assert any("2 malformed" in line for line in lines)

    def test_empty_history_skips(self, history):
        ok, lines = history.gate([])
        assert ok and any("history is empty" in line for line in lines)
        assert lines[0].startswith("SKIP")

    def test_window_bounds_the_median(self, history):
        # Old glory days beyond the window must not gate today's runs.
        entries = [_entry(history, 2_000_000) for _ in range(10)]
        entries += [_entry(history, 1_000_000) for _ in range(3)]
        entries.append(_entry(history, 950_000))
        ok, _lines = history.gate(entries, window=3)
        assert ok


class TestLedgerShape:
    def test_entries_from_report(self, history):
        report = {
            "protocol": "best of 1 rounds, host wall clock",
            "workloads": {
                "syscall-stress": {
                    "speedup": 2.0,
                    "block-cache": {"insns_per_sec": 5000,
                                    "sim_cycles": 10, "instructions": 20},
                    "single-step": {"insns_per_sec": 2500,
                                    "sim_cycles": 10, "instructions": 20},
                },
            },
        }
        entries = history.entries_from_report(report, timestamp="T")
        assert len(entries) == 2  # the speedup scalar is not a cell
        for entry in entries:
            assert entry["schema_version"] == history.SCHEMA_VERSION
            assert entry["timestamp"] == "T"
            assert entry["machine"]["node"]
            assert entry["protocol"].startswith("best of 1")
        modes = {e["mode"] for e in entries}
        assert modes == {"block-cache", "single-step"}

    def test_append_and_cli_gate_roundtrip(self, history, tmp_path, capsys):
        ledger = tmp_path / "hist.jsonl"
        report = {"protocol": "p", "workloads": {
            "w": {"m": {"insns_per_sec": 100, "sim_cycles": 1,
                        "instructions": 1}}}}
        report_path = tmp_path / "report.json"
        report_path.write_text(json.dumps(report))
        for _ in range(history.MIN_SAMPLES):  # warm past the SKIP floor
            assert history.main(["append", "--report", str(report_path),
                                 "--history", str(ledger)]) == 0
        assert history.main(["gate", "--history", str(ledger)]) == 0
        # A 20% slowdown on the same machine/protocol/mode must exit 1.
        slow = dict(json.loads(ledger.read_text().splitlines()[0]))
        slow["insns_per_sec"] = 80
        with open(ledger, "a") as fh:
            fh.write(json.dumps(slow) + "\n")
        assert history.main(["gate", "--history", str(ledger)]) == 1
        out = capsys.readouterr().out
        assert "gate: FAIL" in out

    def test_committed_ledger_lines_are_current_schema(self, history):
        for entry in history.load_history():
            assert entry["schema_version"] == history.SCHEMA_VERSION
            assert entry["insns_per_sec"] > 0
