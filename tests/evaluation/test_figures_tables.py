"""Figure/table generator tests."""

import pytest

from repro.evaluation import figures
from repro.evaluation.tables import render_table2, render_table4


def test_figure1_classifies_all_three_kinds():
    text = figures.figure1()
    assert "valid syscall/sysenter instruction" in text
    assert "partial instruction" in text
    assert "data resembling a syscall" in text
    # byte scan over-approximates; the sweep misses the partial hit.
    assert "2 valid" in text and "1 partial" in text and "2 data" in text


def test_figure2_shows_offline_steps():
    text = figures.figure2()
    assert "libLogger" in text
    assert "(region, offset)" in text
    assert "unique sites logged for ls" in text


def test_figure3_log_format():
    path, contents = figures.figure3()
    assert path.endswith("/ls.log")
    lines = [line for line in contents.splitlines() if line]
    assert len(lines) == 10  # ls: Table 2
    for line in lines:
        region, _, offset = line.rpartition(",")
        assert region.startswith("/")
        assert int(offset) >= 0


def test_figure4_shows_online_flow_and_paths():
    text = figures.figure4()
    assert "ptracer:state-handoff" in text
    assert "ptracer:detach" in text
    assert "rewritten fast path" in text
    assert "uninterposed             :     0" in text


def test_table2_rendering():
    text = render_table2({"/usr/bin/pwd": 7, "/usr/bin/redis-server": 92})
    assert "pwd" in text and "92" in text


def test_table4_lists_all_variants():
    text = render_table4()
    for name in ("zpoline-default", "zpoline-ultra", "K23-default",
                 "K23-ultra", "K23-ultra+"):
        assert name in text
    assert "NULL Execution Check" in text
    assert "Stack Switch" in text
