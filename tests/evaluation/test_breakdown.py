"""Decomposition tests: each mechanism's characteristic expense surfaces as
its dominant non-baseline event — the §6.2.1 narrative, quantified."""

import pytest

from repro.cpu.cycles import Event
from repro.evaluation.breakdown import (
    dominant_event,
    render_breakdown,
    run_decomposed,
)


@pytest.fixture(scope="module")
def breakdowns():
    return {name: run_decomposed(name)
            for name in ("native", "zpoline-default", "lazypoline",
                         "K23-default", "SUD")}


def test_native_is_pure_baseline(breakdowns):
    events = set(breakdowns["native"])
    assert events <= {Event.INSTRUCTION, Event.KERNEL_SYSCALL,
                      Event.MPROTECT}


def test_sud_dominated_by_signal_delivery(breakdowns):
    """'...stems primarily from relying on SUD' (§6.2.1), literally."""
    assert dominant_event(breakdowns["SUD"]) in (Event.SIGNAL_DELIVERY,
                                                 Event.SIGRETURN)
    _count, delivery = breakdowns["SUD"][Event.SIGNAL_DELIVERY]
    total = sum(c for _n, c in breakdowns["SUD"].values())
    assert delivery / total > 0.35


def test_armed_slowpath_is_k23s_main_tax(breakdowns):
    assert dominant_event(breakdowns["K23-default"]) is \
        Event.SUD_ARMED_SLOWPATH


def test_zpoline_has_no_sud_costs(breakdowns):
    assert Event.SUD_ARMED_SLOWPATH not in breakdowns["zpoline-default"]
    assert Event.SIGNAL_DELIVERY not in breakdowns["zpoline-default"]
    assert Event.ZPOLINE_HANDLER in breakdowns["zpoline-default"]


def test_handler_counts_match_iterations(breakdowns):
    count, _cycles = breakdowns["zpoline-default"][Event.ZPOLINE_HANDLER]
    assert count == 800  # one handler body per stress iteration


def test_lazypoline_rewriting_absent_in_steady_state(breakdowns):
    """Discovery rewriting is one-time: the differential (steady-state)
    decomposition shows no rewrite or mprotect traffic at all."""
    assert Event.REWRITE_SITE not in breakdowns["lazypoline"]
    assert Event.MPROTECT not in breakdowns["lazypoline"]


def test_render(breakdowns):
    text = render_breakdown("SUD", breakdowns["SUD"])
    assert "signal_delivery" in text
    assert "total" in text and "%" in text
