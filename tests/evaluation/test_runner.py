"""Evaluation-runner tests: micro ordering, macro shape, figure/table
generation.  These assert the paper's qualitative claims hold, run-to-run."""

import pytest

from repro.evaluation.runner import (
    MACRO_BY_KEY,
    macro_results,
    measure_micro_cycles,
    micro_overheads,
)
from repro.interposers.registry import REGISTRY

MECHANISMS = REGISTRY.names()
from repro.evaluation.tables import PAPER_TABLE5, render_table5
from repro.kernel import Kernel


@pytest.fixture(scope="module")
def overheads():
    return micro_overheads()


class TestMicro:
    def test_native_per_call_cost_reasonable(self):
        native = measure_micro_cycles("native")
        assert 250 < native < 450  # syscall + loop overhead

    def test_every_mechanism_measured(self, overheads):
        assert set(overheads) == set(MECHANISMS[1:])

    def test_paper_ordering_reproduced(self, overheads):
        """Table 5's headline ordering: zpoline < K23-default < lazypoline
        < K23-ultra < K23-ultra+ << SUD."""
        assert overheads["zpoline-default"] < overheads["zpoline-ultra"]
        assert overheads["zpoline-ultra"] < overheads["K23-default"]
        assert overheads["K23-default"] < overheads["lazypoline"]
        assert overheads["lazypoline"] < overheads["K23-ultra"]
        assert overheads["K23-ultra"] < overheads["K23-ultra+"]
        assert overheads["K23-ultra+"] < 2.0 < overheads["SUD"]

    def test_sud_slowpath_floor(self, overheads):
        """SUD-armed kernel entries are the floor under lazypoline/K23."""
        floor = overheads["SUD-no-interposition"]
        assert floor > 1.1
        assert overheads["lazypoline"] > floor
        assert overheads["K23-default"] > floor

    @pytest.mark.parametrize("name", list(PAPER_TABLE5))
    def test_within_two_percent_of_paper(self, overheads, name):
        assert overheads[name] == pytest.approx(PAPER_TABLE5[name],
                                                rel=0.02)

    def test_render_table5(self, overheads):
        text = render_table5(overheads)
        assert "zpoline-default" in text and "15.30" in text or "15.2" in text

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            REGISTRY.create("frobnicator", Kernel())


class TestMacroShape:
    @pytest.fixture(scope="class")
    def nginx_row(self):
        return macro_results(MACRO_BY_KEY["nginx-1w-0k"])

    def test_native_matches_paper(self, nginx_row):
        config = MACRO_BY_KEY["nginx-1w-0k"]
        assert nginx_row["native"]["throughput"] == pytest.approx(
            config.paper_native, rel=0.02)

    def test_fast_interposers_above_95_percent(self, nginx_row):
        for name in ("zpoline-default", "zpoline-ultra", "lazypoline",
                     "K23-default", "K23-ultra", "K23-ultra+"):
            assert nginx_row[name]["relative_pct"] > 95.0

    def test_sud_collapses(self, nginx_row):
        assert nginx_row["SUD"]["relative_pct"] < 60.0

    def test_ordering_zpoline_k23_lazypoline(self, nginx_row):
        assert (nginx_row["zpoline-default"]["relative_pct"]
                > nginx_row["K23-default"]["relative_pct"]
                > nginx_row["lazypoline"]["relative_pct"])

    def test_redis_one_thread_client_limited(self):
        """The redis 1-I/O-thread row: everyone ≈100 % because the client
        saturates first; only SUD dips (Table 6)."""
        results = macro_results(MACRO_BY_KEY["redis-1t"])
        for name in ("zpoline-default", "lazypoline", "K23-ultra+"):
            assert results[name]["relative_pct"] > 99.0
        assert 90.0 < results["SUD"]["relative_pct"] < 99.0

    def test_redis_six_threads_sud_collapse(self):
        """The most dramatic cell: 6 I/O threads under SUD (paper 35.75%)."""
        results = macro_results(MACRO_BY_KEY["redis-6t"])
        assert results["SUD"]["relative_pct"] < 50.0
        assert results["lazypoline"]["relative_pct"] > 99.0

    def test_sqlite_runtime_ratio(self):
        results = macro_results(MACRO_BY_KEY["sqlite"])
        assert results["zpoline-default"]["relative_pct"] > 98.0
        assert results["SUD"]["relative_pct"] == pytest.approx(55.9, abs=3.0)
