"""The decomposition accounting invariant (ISSUE: Table 5 columns must sum
to the total): every cycle the model accumulates is attributed through the
instrumentation bus, so ``Decomposition.columns_total == Decomposition.total``
exactly — no residual — for every registered mechanism, with and without
fault injection.

Historically a fault-injection signal landing inside an interposer critical
window (the host SIGSYS handler) double-charged SIGNAL_DELIVERY and broke
this equality; deliveries are now deferred to handler return (see
``Kernel.deliver_signal``), so the invariant holds under faults too.
"""

import pytest

from repro.evaluation.breakdown import _counts_for, decompose
from repro.faultinject.schedule import FaultConfig
from repro.interposers.registry import REGISTRY
from repro.kernel.syscalls import SIGCHLD

FAULTY = FaultConfig(horizon=256, signal_count=4, signals=(SIGCHLD,),
                     quantum_signal_count=3)


@pytest.mark.parametrize("name", REGISTRY.names())
def test_columns_sum_to_total(name):
    decomposition = decompose(name, iterations=160, seed=91)
    assert decomposition.total > 0
    assert decomposition.residual == 0, (
        f"{name}: {decomposition.residual} unattributed cycles")


@pytest.mark.parametrize("name", ("native", "SUD", "K23-default"))
def test_columns_sum_to_total_under_faults(name):
    decomposition = decompose(name, iterations=160, seed=92,
                              fault_config=FAULTY, fault_seed=7)
    assert decomposition.residual == 0, (
        f"{name}: {decomposition.residual} unattributed cycles under faults")


@pytest.mark.parametrize("name", ("SUD", "K23-default"))
def test_single_run_fully_attributed(name):
    """Stronger than the differential: within ONE run the CounterSink's
    total equals the cycle counter (differentials could mask a residual
    that is identical in both runs)."""
    sink, total = _counts_for(name, iterations=64, seed=93)
    assert sink.total_cycles == total
