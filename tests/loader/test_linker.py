"""Loader tests: ASLR stability, GOT patching, pre-main syscall storm,
LD_PRELOAD ordering, dlopen."""

import pytest

from repro.kernel import Kernel
from repro.kernel.syscalls import Nr
from repro.loader.libc import LIBC_PATH
from repro.loader.linker import _addr_scan_safe
from repro.workloads.programs import ProgramBuilder, data_ref
from tests.simutil import make_hello, spawn_and_run


def test_addr_scan_safety_filter():
    assert _addr_scan_safe(0x7F10_0000_0000)
    assert not _addr_scan_safe(0x0000_0000_050F)  # LE bytes 0F 05 ...
    assert not _addr_scan_safe(0x0000_0000_340F)


def test_aslr_moves_bases_but_offsets_stay():
    """The (region, offset) invariant the offline logs rely on (§5.1)."""
    bases = []
    offsets = []
    for seed in (1, 2):
        kernel = Kernel(seed=seed)
        make_hello().register(kernel)
        process = spawn_and_run(kernel, "/usr/bin/hello")
        base, image, _ns = process.loaded_images[LIBC_PATH]
        bases.append(base)
        offsets.append(image.symbol("write"))
    assert bases[0] != bases[1]
    assert offsets[0] == offsets[1]


def test_no_aslr_is_deterministic():
    results = []
    for _ in range(2):
        kernel = Kernel(seed=5, aslr=False)
        make_hello().register(kernel)
        process = spawn_and_run(kernel, "/usr/bin/hello")
        results.append(process.loaded_images[LIBC_PATH][0])
    assert results[0] == results[1]


def test_libc_mapped_with_canonical_name(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    assert any(r.name == LIBC_PATH for r in process.address_space.regions)


def test_premain_syscall_storm(kernel):
    """§6.1: even simple utilities issue large numbers of startup syscalls
    before any interposition library can load."""
    builder = make_hello()
    builder.image.stub_profile = 90  # ls-sized startup
    builder.register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    assert process.premain_syscalls > 100


def test_premain_sites_live_in_ldso_region(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    premain = kernel.app_requested_syscalls(process.pid)[:5]
    for record in premain:
        region = process.address_space.region_at(record.site)
        assert region is not None and region.name == "[ld.so]"


def test_got_patching_resolves_cross_image_calls(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    assert bytes(process.output) == b"hello\n"  # write resolved through GOT


def test_unresolved_import_raises(kernel):
    builder = ProgramBuilder("/bin/badimport")
    builder.start()
    builder.libc("no_such_function")
    builder.exit(0)
    builder.register(kernel)
    from repro.errors import LoaderError

    with pytest.raises(LoaderError):
        kernel.spawn_process("/bin/badimport")


def test_ld_preload_library_constructor_runs(kernel):
    ran = []

    from repro.loader.image import SimImage

    lib = SimImage(name="/opt/libhook.so", entry="")
    lib.constructors.append(lambda thread, base: ran.append(base))
    lib.finalize()
    kernel.loader.register_image(lib)
    make_hello().register(kernel)
    spawn_and_run(kernel, "/usr/bin/hello",
                  env={"LD_PRELOAD": "/opt/libhook.so"})
    assert len(ran) == 1


def test_preload_constructor_runs_before_main(kernel):
    order = []

    from repro.loader.image import SimImage

    lib = SimImage(name="/opt/libhook.so", entry="")
    lib.constructors.append(lambda thread, base: order.append("ctor"))
    lib.finalize()
    kernel.loader.register_image(lib)
    make_hello().register(kernel)
    process = kernel.spawn_process(
        "/usr/bin/hello", env={"LD_PRELOAD": "/opt/libhook.so"})
    kernel.run_process(process)
    # The ctor ran before main's write syscall.
    assert order == ["ctor"]
    assert bytes(process.output) == b"hello\n"


def test_missing_preload_is_ignored_with_warning(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello",
                            env={"LD_PRELOAD": "/opt/absent.so"})
    assert process.exit_status == 0
    assert process.ld_preload_errors


def test_dlopen_loads_library_at_runtime(kernel):
    """dlopen maps new executable code after startup — the dynamic-code
    blind spot of load-time rewriters (P2a)."""
    from repro.loader.image import SimImage

    plugin = SimImage(name="/opt/plugin.so", entry="")
    plugin.asm.label("plugin_fn")
    plugin.asm.endbr64()
    plugin.asm.ret()
    plugin.finalize()
    kernel.loader.register_image(plugin)

    builder = ProgramBuilder("/bin/dlopener")
    builder.string("path", "/opt/plugin.so")
    builder.start()
    builder.libc("dlopen", data_ref("path"), 2)
    builder.exit(0)
    builder.register(kernel)
    process = spawn_and_run(kernel, "/bin/dlopener")
    assert process.exit_status == 0
    assert "/opt/plugin.so" in process.loaded_images


def test_stack_mapped_and_usable(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    assert any(r.name == "[stack]" for r in process.address_space.regions)


def test_vdso_mapped_by_default(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    assert "[vdso]" in process.loaded_images


def test_proc_maps_render(kernel):
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    lines = process.address_space.maps()
    assert any(LIBC_PATH in line for line in lines)
    assert any("[stack]" in line for line in lines)
