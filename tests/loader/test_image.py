"""SimImage unit tests: sections, symbols, GOT offsets, error paths."""

import pytest

from repro.errors import LoaderError
from repro.loader.image import DATA_START_LABEL, GOT_PREFIX, SimImage
from repro.memory.pages import PAGE_SIZE


def minimal_image(name="/opt/x.so", imports=()):
    image = SimImage(name=name, entry="", imports=list(imports))
    image.asm.label("fn")
    image.asm.endbr64()
    image.asm.ret()
    return image


def test_begin_data_emits_got_slots():
    image = minimal_image(imports=["write", "exit"])
    image.begin_data()
    assert image.got_offset("write") == image.asm.labels[GOT_PREFIX + "write"]
    assert image.got_offset("exit") == image.got_offset("write") + 8


def test_begin_data_twice_rejected():
    image = minimal_image()
    image.begin_data()
    with pytest.raises(LoaderError):
        image.begin_data()


def test_finalize_auto_creates_data_section():
    image = minimal_image()
    image.finalize()
    assert DATA_START_LABEL in image.asm.labels
    assert image.code_size % PAGE_SIZE == 0


def test_missing_entry_rejected():
    image = SimImage(name="/bin/broken", entry="_start")
    image.asm.ret()
    with pytest.raises(LoaderError):
        image.finalize()


def test_unknown_symbol_rejected():
    image = minimal_image()
    with pytest.raises(LoaderError):
        image.symbol("nope")
    assert not image.has_symbol("nope")
    assert image.has_symbol("fn")


def test_code_size_excludes_data():
    image = minimal_image()
    image.begin_data()
    image.asm.dq(1, 2, 3)
    image.finalize()
    assert image.code_size < len(image.blob)
    assert len(image.blob) - image.code_size == 24


def test_syscall_sites_ground_truth():
    image = SimImage(name="/opt/s.so", entry="")
    image.asm.mark("a")
    image.asm.syscall_()
    image.asm.mark("b")
    image.asm.sysenter_()
    image.finalize()
    assert image.syscall_sites == {"a": 0, "b": 2}


def test_exported_symbols_hide_got():
    image = minimal_image(imports=["write"])
    image.begin_data()
    image.finalize()
    exported = image.exported_symbols()
    assert "fn" in exported
    assert all(not name.startswith(GOT_PREFIX) for name in exported)


def test_finalize_idempotent():
    image = minimal_image()
    assert image.finalize() is image
    blob = image.blob
    image.finalize()
    assert image.blob == blob
