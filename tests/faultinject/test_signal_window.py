"""Regression: a fault-injected signal landing inside an interposer
critical window (the host SIGSYS/slow-path handler that SUD and K23 run
syscall forwarding in) must be *deferred* to handler return, not delivered
into the window.

Before the fix, the outer host handler's context restore clobbered the
simulated handler's RIP redirect: SIGNAL_DELIVERY was charged twice, the
signal frame was orphaned, and the signal stayed masked forever.  Now
every mechanism delivers the injected signal exactly once, the simulated
handler runs, and thread state comes back clean — byte-identical output
across mechanisms.
"""

import pytest

from repro.arch.registers import Reg
from repro.faultinject.engine import FaultInjector
from repro.faultinject.schedule import FaultConfig, build_schedule
from repro.interposers.registry import REGISTRY
from repro.kernel import Kernel
from repro.kernel.syscalls import Nr, SIGCHLD
from repro.observability.events import SignalEvent
from repro.observability.sinks import RingBufferSink
from repro.workloads.programs import ProgramBuilder, data_ref

SIGNAL_COUNT = 3
PROG = "/bin/chldloop"


def build_chldloop(iterations: int = 60) -> ProgramBuilder:
    """A loop of writes with a simulated-code SIGCHLD handler that acks
    each delivery with a '+' then rt_sigreturns."""
    builder = ProgramBuilder(PROG)
    builder.string("msg", "x")
    builder.string("ack", "+")
    builder.start()
    asm = builder.asm
    asm.lea_rip_label(Reg.RSI, "handler")
    builder.libc("rt_sigaction", SIGCHLD, Reg.RSI, 0, 8)
    for _ in range(iterations):
        builder.libc("write", 1, data_ref("msg"), 1)
    builder.exit(0)
    builder.label("handler")
    asm.endbr64()
    builder.libc("write", 1, data_ref("ack"), 1)
    builder.direct_syscall(Nr.rt_sigreturn, mark="restore_rt")
    return builder


def run_mechanism(name: str):
    from repro.core import OfflinePhase
    from repro.core.offline import import_logs
    from repro.evaluation.runner import needs_offline

    kernel = Kernel(seed=777, aslr=False)
    kernel.torn_window_probability = 0.0
    ring = RingBufferSink(capacity=16384)
    kernel.bus.attach(ring)
    build_chldloop().register(kernel)
    if needs_offline(name):
        offline_kernel = Kernel(seed=778, aslr=False)
        build_chldloop().register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run(PROG)
        import_logs(kernel, offline.export())
    REGISTRY.create(name, kernel)
    config = FaultConfig(horizon=64, signal_count=SIGNAL_COUNT,
                         signals=(SIGCHLD,))
    FaultInjector(kernel, build_schedule(11, config))
    process = kernel.spawn_process(PROG)
    kernel.run_process(process, max_steps=2_000_000)
    assert process.exited, f"{name}: process did not exit"
    return process, ring


def chld_events(ring, kind: str):
    return [event for event in ring.events()
            if isinstance(event, SignalEvent)
            and event.signal == SIGCHLD and event.kind == kind]


@pytest.mark.parametrize("name", ("native", "SUD", "K23-default",
                                  "lazypoline"))
def test_injected_signal_delivered_once_and_clean(name):
    process, ring = run_mechanism(name)
    thread = process.main_thread
    assert process.exit_status == 0
    # The simulated handler ran once per injected signal...
    assert bytes(process.output).count(b"+") == SIGNAL_COUNT
    # ...and each delivery happened exactly once (no clobber/re-delivery).
    assert len(chld_events(ring, "deliver")) == SIGNAL_COUNT
    # Clean thread state: no orphaned frames, signal not left masked.
    assert thread.signal_frames == []
    assert SIGCHLD not in thread.blocked_signals
    assert thread.pending_signals == []


def test_output_identical_across_mechanisms():
    """Interposition must not change what the program computes — even with
    signals landing inside the interposers' critical windows."""
    outputs = {}
    for name in ("native", "SUD", "K23-default", "lazypoline"):
        process, _ring = run_mechanism(name)
        outputs[name] = bytes(process.output)
    assert len(set(outputs.values())) == 1, outputs


def test_deferral_happens_inside_host_windows():
    """Under SUD at least one injected signal arrives while the host
    SIGSYS handler is live and is deferred (the regression scenario)."""
    _process, ring = run_mechanism("SUD")
    assert len(chld_events(ring, "defer")) >= 1
    # Every deferred delivery was flushed into a real one afterwards.
    assert len(chld_events(ring, "deliver")) == SIGNAL_COUNT
