"""FaultInjector engine semantics against live kernels."""

import pytest

from repro.cpu.cycles import Event
from repro.faultinject.engine import FaultInjector
from repro.faultinject.schedule import Fault, FaultConfig, build_schedule
from repro.interposers.registry import REGISTRY
from repro.kernel import Kernel
from repro.kernel.syscalls import Nr, SIGCHLD, SIGUSR1
from repro.memory import PAGE_SIZE, Prot
from repro.workloads.stress import STRESS_PATH, build_stress


def stress_kernel(block_cache=None, iterations=20) -> Kernel:
    kernel = Kernel(seed=777, aslr=False)
    kernel.torn_window_probability = 0.0
    if block_cache is not None:
        kernel.block_cache_enabled = block_cache
    build_stress(iterations).register(kernel)
    return kernel


def run_with(kernel, schedule, mechanism="native", **inj_kwargs):
    REGISTRY.create(mechanism, kernel)
    injector = FaultInjector(kernel, schedule, **inj_kwargs)
    process = kernel.spawn_process(STRESS_PATH)
    kernel.run_process(process, max_steps=2_000_000)
    assert process.exited
    return process, injector


class TestErrnoChannel:
    def test_rate_one_fails_every_injectable_occurrence(self):
        kernel = Kernel(seed=777, aslr=False)
        kernel.torn_window_probability = 0.0
        from repro.workloads.coreutils import install_coreutils
        install_coreutils(kernel)
        REGISTRY.create("native", kernel)
        config = FaultConfig(horizon=64,
                             errno_rates={int(Nr.read): 1.0})
        injector = FaultInjector(kernel, build_schedule(3, config))
        process = kernel.spawn_process("/usr/bin/cat")
        kernel.run_process(process, max_steps=2_000_000)
        assert process.exited and process.exit_status == 0
        # Every main-phase read failed, so cat printed nothing.
        assert any(line.startswith("errno@") and " read " in line.replace(
            "read ->", "read -> ") for line in injector.log)
        assert bytes(process.output) == b""

    def test_premain_is_never_injected(self):
        kernel = stress_kernel()
        config = FaultConfig(horizon=400, errno_rate=1.0)
        _, injector = run_with(kernel, build_schedule(1, config))
        # stress's only main-phase call is syscall(500) — not injectable —
        # and the loader stub's pre-main calls must not be touched either.
        assert injector.log == []
        assert injector.app_calls > 0


class TestInstructionTriggers:
    @pytest.mark.parametrize("block_cache", [True, False])
    def test_fires_exactly_at_the_scheduled_count(self, block_cache):
        # Warm run (no injector) to learn the deterministic total, then
        # schedule a signal at the midpoint.
        warm = stress_kernel(block_cache=True, iterations=100)
        REGISTRY.create("native", warm)
        process = warm.spawn_process(STRESS_PATH)
        warm.run_process(process, max_steps=2_000_000)
        total = warm.cycles.counts[Event.INSTRUCTION]
        target = total // 2
        assert target > 100

        kernel = stress_kernel(block_cache=block_cache, iterations=100)
        fired = []
        config = FaultConfig(extra_faults=(
            Fault("insn", target, "signal", arg=SIGUSR1),))
        REGISTRY.create("native", kernel)
        injector = FaultInjector(kernel, build_schedule(0, config))
        process = kernel.spawn_process(STRESS_PATH)
        process.dispositions.set_action(
            SIGUSR1,
            lambda ctx: fired.append(kernel.cycles.counts[Event.INSTRUCTION]))
        kernel.run_process(process, max_steps=2_000_000)
        # Budget clipping dooms block replay at the trigger point, so the
        # unit boundary — and the signal — lands on *exactly* the scheduled
        # retire count in both interpreter modes.
        assert fired == [target]
        assert any("signal@insn" in line for line in injector.log)


class TestOtherTriggers:
    def test_exit_signal_lands_after_scheduled_occurrence(self):
        kernel = stress_kernel()
        config = FaultConfig(horizon=40, signal_count=2)
        _, injector = run_with(kernel, build_schedule(4, config))
        assert sum("signal@exit" in line for line in injector.log) == 2

    def test_quantum_trigger_fires(self):
        kernel = stress_kernel()
        config = FaultConfig(extra_faults=(
            Fault("quantum", 1, "signal", arg=SIGCHLD),))
        _, injector = run_with(kernel, build_schedule(0, config))
        assert injector.quanta >= 2
        assert any("signal@quantum1" in line for line in injector.log)

    def test_window_patch_applies_remote_store(self):
        kernel = stress_kernel()
        # Windows must actually open for this test (run_cell pins the
        # probability to 0 precisely because window events are
        # mechanism-variant).
        kernel.torn_window_probability = 1.0
        REGISTRY.create("native", kernel)
        process = kernel.spawn_process(STRESS_PATH)
        scratch = process.address_space.mmap(
            None, PAGE_SIZE, Prot.READ | Prot.WRITE, name="scratch")
        config = FaultConfig(extra_faults=(
            Fault("window", 0, "patch", addr=scratch, data=b"\xaa\xbb"),))
        injector = FaultInjector(kernel, build_schedule(0, config),
                                 main_phase_only=False)
        kernel.preemption_window(process.main_thread)
        assert process.address_space.read_kernel(scratch, 2) == b"\xaa\xbb"
        assert any("patch@window0" in line for line in injector.log)


class TestSelectorFlip:
    def test_flip_lets_one_call_escape_sud(self):
        kernel = stress_kernel()
        config = FaultConfig(extra_faults=(
            Fault("syscall-entry", 3, "selector-flip"),))
        process, injector = run_with(kernel, build_schedule(0, config),
                                     mechanism="SUD")
        assert process.exit_status == 0
        assert any("selector-flip@entry3" in line for line in injector.log)
        main = kernel.syscall_log[process.premain_log_len:]
        origins = [r.origin for r in main
                   if r.pid == process.pid and r.app_requested]
        # Exactly one call bypassed the SIGSYS path (executed natively);
        # the rest were forwarded by the SUD handler.
        assert origins.count("app") == 1
        assert origins.count("sud-handler") == len(origins) - 1


class TestLogDeterminism:
    @pytest.mark.parametrize("block_cache", [True, False])
    def test_two_runs_identical_injection_log(self, block_cache):
        logs = []
        for _ in range(2):
            kernel = stress_kernel(block_cache=block_cache)
            config = FaultConfig(horizon=40, errno_rate=0.5, signal_count=2)
            _, injector = run_with(kernel, build_schedule(6, config),
                                   mechanism="SUD")
            logs.append(list(injector.log))
        assert logs[0] == logs[1]
