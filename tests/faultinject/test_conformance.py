"""Differential conformance determinism: same seed ⇒ same verdicts, with
the block cache on or off (ISSUE satellite: determinism coverage)."""

import json

import pytest

from repro.evaluation.conformance import run_matrix
from repro.faultinject.conformance import (conformance_config, run_cell)
from repro.faultinject.schedule import build_schedule

SMOKE_MECHANISMS = ("native", "SUD", "zpoline-default", "K23-default")


class TestCellDeterminism:
    def test_same_seed_identical_schedule_bytes(self):
        a = build_schedule(3, conformance_config())
        b = build_schedule(3, conformance_config())
        assert a.encode() == b.encode()

    def test_two_runs_identical_observation(self):
        a = run_cell("K23-default", "cat", 2)
        b = run_cell("K23-default", "cat", 2)
        assert a == b
        assert a.injections == b.injections

    def test_cross_mode_identical_observation(self):
        cached = run_cell("SUD", "stress", 1, block_cache=True)
        stepped = run_cell("SUD", "stress", 1, block_cache=False)
        assert cached == stepped


class TestMatrix:
    def test_smoke_matrix_is_conformant_in_both_modes(self):
        kwargs = dict(mechanisms=SMOKE_MECHANISMS,
                      workloads=("stress", "cat"), seeds=(1,))
        cached = run_matrix(block_cache=True, **kwargs)
        assert cached.ok, cached.render()
        stepped = run_matrix(block_cache=False, **kwargs)
        assert stepped.ok, stepped.render()
        assert cached.verdict_map() == stepped.verdict_map()

    def test_artifact_roundtrip(self, tmp_path):
        matrix = run_matrix(mechanisms=("native", "SUD"),
                            workloads=("stress",), seeds=(1,))
        path = matrix.write_artifact(tmp_path / "matrix.json")
        data = json.loads(path.read_text())
        assert data["oracle"] == "native"
        assert data["ok"] is True
        assert data["cells"][0]["mechanism"] == "SUD"
        assert "schedule_sha" in data["cells"][0]

    def test_render_mentions_verdict(self):
        matrix = run_matrix(mechanisms=("native", "SUD"),
                            workloads=("stress",), seeds=(1,))
        text = matrix.render()
        assert "verdict: OK" in text
        assert "SUD" in text


class TestRegressions:
    def test_cat_survives_injected_openat_failure(self):
        """Regression: schedule seed 5 injects EAGAIN into cat's openat;
        the bad fd then fails every read with -EBADF, and cat's loop used
        to treat any nonzero read result as data — spinning forever on
        error results.  The loop now exits on rax <= 0 (as real cat does
        on read errors)."""
        obs = run_cell("native", "cat", 5, max_steps=400_000)
        assert obs.exit_status == 0
        assert any("openat" in line for line in obs.injections)
