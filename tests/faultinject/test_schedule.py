"""Schedule determinism: same seed ⇒ byte-identical plans."""

from repro.faultinject.schedule import (Fault, FaultConfig, build_schedule,
                                        INJECTABLE_DEFAULT)
from repro.kernel.syscalls import Nr, SIGCHLD


def busy_config() -> FaultConfig:
    return FaultConfig(horizon=64, errno_rate=0.2, signal_count=3,
                       insn_signal_count=2, quantum_signal_count=2,
                       selector_flips=2)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        a = build_schedule(11, busy_config())
        b = build_schedule(11, busy_config())
        assert a.encode() == b.encode()
        assert a.digest() == b.digest()

    def test_different_seeds_differ(self):
        a = build_schedule(11, busy_config())
        b = build_schedule(12, busy_config())
        assert a.encode() != b.encode()

    def test_config_is_part_of_the_contract(self):
        a = build_schedule(11, FaultConfig(horizon=64, errno_rate=0.2))
        b = build_schedule(11, FaultConfig(horizon=64, errno_rate=0.3))
        assert a.encode() != b.encode()

    def test_digest_is_sha256_hex(self):
        digest = build_schedule(1, busy_config()).digest()
        assert len(digest) == 64
        int(digest, 16)


class TestStructure:
    def test_draws_cover_the_horizon(self):
        sched = build_schedule(5, busy_config())
        assert len(sched.errno_draws) == 64
        for uniform, errno in sched.errno_draws:
            assert 0.0 <= uniform < 1.0
            assert errno > 0

    def test_fault_positions_respect_ranges(self):
        config = busy_config()
        sched = build_schedule(7, config)
        for fault in sched.by_trigger("syscall-exit"):
            assert 0 <= fault.at < config.horizon
            assert fault.arg == SIGCHLD
        lo, hi = config.insn_range
        for fault in sched.by_trigger("insn"):
            assert lo <= fault.at < hi
        lo, hi = config.selector_flip_range
        for fault in sched.by_trigger("syscall-entry"):
            assert lo <= fault.at < hi
            assert fault.action == "selector-flip"

    def test_faults_sorted_for_budget_clipping(self):
        sched = build_schedule(9, busy_config())
        insn = sched.by_trigger("insn")
        assert insn == sorted(insn, key=lambda f: f.at)

    def test_extra_faults_pass_through(self):
        extra = Fault("window", 2, "patch", addr=0x1000, data=b"\x90")
        sched = build_schedule(1, FaultConfig(extra_faults=(extra,)))
        assert extra in sched.faults
        assert "window@2:patch" in extra.encode()

    def test_timers_never_injectable(self):
        assert Nr.clock_gettime not in INJECTABLE_DEFAULT
        assert Nr.gettimeofday not in INJECTABLE_DEFAULT
