"""Load-generator unit tests."""

import pytest

from repro.kernel import Kernel
from repro.workloads.clients import (
    DriveResult,
    HTTP_REQUEST,
    KeepAliveSource,
    REDIS_GET,
    redis_benchmark,
    wrk,
)
from tests.kernel.test_net import echo_server


def keepalive_echo(kernel, port=8080):
    """An echo server that serves many requests per connection."""
    from repro.arch.registers import Reg
    from repro.workloads.programs import ProgramBuilder, RESULT, data_ref

    builder = ProgramBuilder("/bin/kecho")
    builder.buffer("buf", 256)
    builder.start()
    builder.libc("socket", 2, 1, 0)
    builder.asm.mov_rr(Reg.R14, Reg.RAX)
    builder.libc("bind", Reg.R14, port, 0)
    builder.libc("listen", Reg.R14, 128)
    builder.label(".accept")
    builder.libc("accept", Reg.R14, 0, 0)
    builder.asm.mov_rr(Reg.R13, Reg.RAX)
    builder.label(".req")
    builder.libc("recvfrom", Reg.R13, data_ref("buf"), 256, 0, 0, 0)
    builder.asm.test_rr(Reg.RAX, Reg.RAX)
    builder.asm.je(".closed")
    builder.libc("sendto", Reg.R13, data_ref("buf"), RESULT, 0, 0, 0)
    builder.asm.jmp(".req")
    builder.label(".closed")
    builder.libc("close", Reg.R13)
    builder.asm.jmp(".accept")
    builder.register(kernel)


@pytest.fixture
def served_kernel():
    kernel = Kernel(seed=70)
    keepalive_echo(kernel, port=8080)
    process = kernel.spawn_process("/bin/kecho")
    kernel.run_process(process, max_steps=200_000)
    return kernel


def test_drive_result_math():
    result = DriveResult(requests=10, cycles=1000, failures=0)
    assert result.cycles_per_request == 100.0
    empty = DriveResult(requests=0, cycles=50, failures=5)
    assert empty.cycles_per_request == float("inf")


def test_wrk_sends_http_payload(served_kernel):
    generator = wrk(served_kernel, 8080, connections=1)
    result = generator.drive(1)
    assert result.requests == 1
    # The echo server reflected the request bytes back.
    # (drained inside drive; send another to inspect)
    generator.connections[0].client_send(HTTP_REQUEST)
    served_kernel.run(max_steps=100_000)
    assert generator.connections[0].client_recv_all() == HTTP_REQUEST


def test_redis_benchmark_payload_shape():
    assert REDIS_GET.startswith(b"*2\r\n$3\r\nGET")


def test_cycles_measured_only_during_drive(served_kernel):
    generator = wrk(served_kernel, 8080, connections=1)
    generator.warmup(2)
    before = served_kernel.cycles.cycles
    result = generator.drive(5)
    after = served_kernel.cycles.cycles
    assert result.cycles == after - before
    assert result.requests == 5


def test_multi_connection_needs_matching_workers(served_kernel):
    """A single-worker server can only progress one connection's session at
    a time — the reason the macro configs match connections to workers."""
    generator = KeepAliveSource(served_kernel, 8080, connections=3,
                               payload=b"m")
    result = generator.drive(3)
    assert result.requests >= 1
    assert generator.failures >= 1  # the starved connections


def test_batching_respects_request_limit(served_kernel):
    generator = KeepAliveSource(served_kernel, 8080, connections=1,
                               payload=b"m")
    result = generator.drive(7)
    assert result.requests == 7
    assert result.failures == 0


def test_close_shuts_connections(served_kernel):
    generator = wrk(served_kernel, 8080, connections=2)
    generator.drive(2)
    generator.close()
    assert all(conn.client_closed for conn in generator.connections)


def test_stall_guard_reports_partial(served_kernel):
    """Kill the server mid-drive: the guard stops the drive rather than
    spinning forever."""
    generator = wrk(served_kernel, 8080, connections=1)
    generator.drive(2)
    server = next(iter(served_kernel.processes.values()))
    server.terminate(137)
    result = generator.drive(20)
    assert result.requests < 20
    assert generator.failures > 0
