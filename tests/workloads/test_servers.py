"""Server-workload correctness: request/response behaviour, worker models,
and Table 2 site counts for the applications."""

import pytest

from repro.core import OfflinePhase
from repro.kernel import Kernel
from repro.workloads.clients import redis_benchmark, wrk
from repro.workloads.lighttpd import (
    LIGHTTPD_PORT,
    LIGHTTPD_TABLE2_SITES,
    install_lighttpd,
)
from repro.workloads.nginx import NGINX_PORT, NGINX_TABLE2_SITES, install_nginx
from repro.workloads.redis import REDIS_PORT, REDIS_TABLE2_SITES, install_redis
from repro.workloads.sqlite import SQLITE_TABLE2_SITES, install_sqlite
from repro.workloads.stress import build_stress, install_stress


def boot_server(installer, port, client_factory, connections=1, seed=33):
    kernel = Kernel(seed=seed)
    path = installer(kernel)
    kernel.spawn_process(path)
    kernel.run(max_steps=2_000_000)
    generator = client_factory(kernel, port, connections)
    return kernel, generator


class TestNginx:
    def test_serves_4k_body(self):
        kernel, generator = boot_server(
            lambda k: install_nginx(k, 1, 4), NGINX_PORT, wrk)
        result = generator.drive(3)
        assert result.failures == 0
        # Each response: 128-byte header + 4096-byte body.
        generator.connections[0].client_send(b"GET / HTTP/1.1\r\n\r\n")
        kernel.run(max_steps=200_000)
        assert len(generator.connections[0].client_recv_all()) == 128 + 4096

    def test_serves_empty_body(self):
        kernel, generator = boot_server(
            lambda k: install_nginx(k, 1, 0), NGINX_PORT, wrk)
        generator.connections[0].client_send(b"GET / HTTP/1.1\r\n\r\n")
        kernel.run(max_steps=200_000)
        assert len(generator.connections[0].client_recv_all()) == 128

    def test_ten_workers_fork(self):
        kernel, generator = boot_server(
            lambda k: install_nginx(k, 10, 0), NGINX_PORT, wrk,
            connections=10)
        workers = [p for p in kernel.processes.values() if p.parent]
        assert len(workers) == 10
        result = generator.drive(30)
        assert result.failures == 0

    def test_master_parks_in_wait4(self):
        kernel, generator = boot_server(
            lambda k: install_nginx(k, 2, 0), NGINX_PORT, wrk)
        master = next(p for p in kernel.processes.values()
                      if p.parent is None)
        assert not master.exited
        assert master.main_thread.block_condition is not None


class TestLighttpd:
    def test_roundtrip(self):
        kernel, generator = boot_server(
            lambda k: install_lighttpd(k, 1, 0), LIGHTTPD_PORT, wrk)
        result = generator.drive(8)
        assert result.failures == 0

    def test_cached_serving_uses_fewer_syscalls_than_nginx(self):
        """lighttpd's file cache: fewer syscalls per request than nginx —
        the structural reason its SUD row is visibly better (Table 6)."""
        counts = {}
        for name, installer, port in (
                ("nginx", lambda k: install_nginx(k, 1, 0), NGINX_PORT),
                ("lighttpd", lambda k: install_lighttpd(k, 1, 0),
                 LIGHTTPD_PORT)):
            kernel, generator = boot_server(installer, port, wrk)
            generator.warmup(2)
            before = len(kernel.syscall_log)
            generator.drive(40)
            counts[name] = (len(kernel.syscall_log) - before) / 40
        assert counts["lighttpd"] < counts["nginx"]


class TestRedis:
    def test_get_roundtrip(self):
        kernel, generator = boot_server(
            lambda k: install_redis(k, 1), REDIS_PORT, redis_benchmark)
        result = generator.drive(5)
        assert result.failures == 0

    def test_io_threads_spawned(self):
        kernel, generator = boot_server(
            lambda k: install_redis(k, 6), REDIS_PORT, redis_benchmark,
            connections=6)
        server = next(iter(kernel.processes.values()))
        assert len(server.threads) == 6
        result = generator.drive(18)
        assert result.failures == 0


class TestSqlite:
    def test_speedtest_completes(self, kernel):
        path = install_sqlite(kernel)
        process = kernel.spawn_process(path)
        kernel.run_process(process, max_steps=20_000_000)
        assert process.exit_status == 0
        # The WAL received frames and was synced.
        assert len(kernel.vfs.read("/var/db/speedtest.db-wal")) > 0
        from repro.kernel.syscalls import Nr

        syncs = [r for r in kernel.app_requested_syscalls(process.pid)
                 if r.nr == Nr.fdatasync]
        assert len(syncs) >= 2  # periodic + final


class TestStress:
    def test_loop_issues_exact_count(self, kernel):
        install_stress(kernel, iterations=25)
        process = kernel.spawn_process("/usr/bin/syscall-stress")
        kernel.run_process(process)
        assert process.exit_status == 0
        fakes = [r for r in kernel.app_requested_syscalls(process.pid)
                 if r.nr == 500]
        assert len(fakes) == 25

    def test_iteration_count_does_not_change_layout(self):
        """The differential-measurement prerequisite: images built with
        different loop counts have identical code layout."""
        small = build_stress(300).build()
        large = build_stress(1500).build()
        assert small.syscall_sites == large.syscall_sites
        assert small.code_size == large.code_size


class TestTable2Applications:
    @pytest.mark.parametrize("installer,port,client,expected", [
        (lambda k: install_nginx(k, 1, 0), NGINX_PORT, wrk,
         NGINX_TABLE2_SITES),
        (lambda k: install_lighttpd(k, 1, 0), LIGHTTPD_PORT, wrk,
         LIGHTTPD_TABLE2_SITES),
        (lambda k: install_redis(k, 1), REDIS_PORT, redis_benchmark,
         REDIS_TABLE2_SITES),
    ])
    def test_server_site_counts(self, installer, port, client, expected):
        kernel = Kernel(seed=34)
        path = installer(kernel)
        offline = OfflinePhase(kernel)

        def driver(kern, proc):
            kern.run(max_steps=600_000)
            generator = client(kern, port, 1)
            generator.drive(12)
            generator.close()

        _proc, log = offline.run(path, driver=driver, max_steps=20_000_000)
        assert len(log) == expected

    def test_sqlite_site_count(self):
        kernel = Kernel(seed=35)
        path = install_sqlite(kernel)
        offline = OfflinePhase(kernel)
        _proc, log = offline.run(path, max_steps=20_000_000)
        assert len(log) == SQLITE_TABLE2_SITES
