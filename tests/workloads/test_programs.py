"""ProgramBuilder unit tests: marshalling, loops, data, error paths."""

import pytest

from repro.arch.registers import Reg
from repro.errors import AssemblerError
from repro.kernel import Kernel
from repro.workloads.programs import ProgramBuilder, RESULT, data_ref
from tests.simutil import spawn_and_run


def run_program(kernel, builder):
    builder.register(kernel)
    return spawn_and_run(kernel, builder.image.name)


def test_result_sentinel_threads_return_value(kernel):
    builder = ProgramBuilder("/bin/t1")
    builder.start()
    builder.libc("getpid")
    builder.libc("exit", RESULT)
    process = run_program(kernel, builder)
    assert process.exit_status == process.pid & 0xFF


def test_register_arguments_pass_through(kernel):
    builder = ProgramBuilder("/bin/t2")
    builder.start()
    builder.asm.mov_ri(Reg.R13, 42)
    builder.libc("exit", Reg.R13)
    process = run_program(kernel, builder)
    assert process.exit_status == 42


def test_data_ref_materializes_address(kernel):
    builder = ProgramBuilder("/bin/t3")
    builder.string("s", "xyz\n")
    builder.start()
    builder.libc("write", 1, data_ref("s"), 4)
    builder.exit(0)
    process = run_program(kernel, builder)
    assert bytes(process.output) == b"xyz\n"


def test_nested_loops(kernel):
    builder = ProgramBuilder("/bin/t4")
    builder.start()
    builder.loop(3, counter=Reg.R15)
    builder.loop(4, counter=Reg.R14)
    builder.libc("getpid")
    builder.end_loop()
    builder.end_loop()
    builder.exit(0)
    process = run_program(kernel, builder)
    assert process.exit_status == 0
    from repro.kernel.syscalls import Nr

    pids = [r for r in kernel.app_requested_syscalls(process.pid)
            if r.nr == Nr.getpid]
    assert len(pids) == 12


def test_unclosed_loop_rejected():
    builder = ProgramBuilder("/bin/t5")
    builder.start()
    builder.loop(2)
    with pytest.raises(AssemblerError):
        builder.build()


def test_too_many_arguments_rejected():
    builder = ProgramBuilder("/bin/t6")
    builder.start()
    with pytest.raises(AssemblerError):
        builder.libc("write", 1, 2, 3, 4, 5, 6, 7)


def test_direct_syscall_site_lives_in_image(kernel):
    builder = ProgramBuilder("/bin/t7")
    builder.start()
    builder.direct_syscall(39, mark="inlined")
    builder.exit(0)
    image = builder.build()
    assert "inlined" in image.syscall_sites
    kernel.loader.register_image(image)
    process = spawn_and_run(kernel, "/bin/t7")
    from repro.kernel.syscalls import Nr

    record = next(r for r in kernel.app_requested_syscalls(process.pid)
                  if r.nr == Nr.getpid)
    region = process.address_space.region_at(record.site)
    assert region.name == "/bin/t7"


def test_imports_deduplicated():
    builder = ProgramBuilder("/bin/t8")
    builder.start()
    builder.libc("getpid")
    builder.libc("getpid")
    builder.exit(0)
    image = builder.build()
    assert image.imports.count("getpid") == 1


def test_buffers_and_words(kernel):
    builder = ProgramBuilder("/bin/t9")
    builder.buffer("buf", 32)
    builder.words("tbl", [0x1111, 0x2222])
    builder.start()
    builder.asm.lea_rip_label(Reg.RBX, "tbl")
    builder.asm.load(Reg.RAX, Reg.RBX)
    builder.libc("exit", RESULT)
    process = run_program(kernel, builder)
    assert process.exit_status == 0x11  # low byte of 0x1111


def test_build_idempotent():
    builder = ProgramBuilder("/bin/t10")
    builder.start()
    builder.exit(0)
    assert builder.build() is builder.build()
