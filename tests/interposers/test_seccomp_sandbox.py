"""SeccompSandbox tests — and the §1 expressiveness gap, demonstrated."""

import pytest

from repro.interposers.hooks import SandboxHook
from repro.interposers.seccomp_sandbox import SeccompSandbox
from repro.interposers.zpoline import ZpolineInterposer
from repro.kernel import Kernel
from repro.kernel.syscalls import Errno, Nr
from repro.workloads.programs import ProgramBuilder, RESULT, data_ref
from tests.simutil import spawn_and_run


def socket_program(kernel):
    builder = ProgramBuilder("/bin/socktry")
    builder.start()
    builder.libc("socket", 2, 1, 0)
    builder.libc("exit", RESULT)
    builder.register(kernel)


def two_file_program(kernel):
    """Opens /etc/public then /etc/secret; exits with the second fd."""
    builder = ProgramBuilder("/bin/twofiles")
    builder.string("pub", "/etc/public")
    builder.string("sec", "/etc/secret")
    builder.start()
    builder.libc("openat", (1 << 64) - 100, data_ref("pub"), 0)
    builder.libc("openat", (1 << 64) - 100, data_ref("sec"), 0)
    builder.libc("exit", RESULT)
    builder.register(kernel)
    kernel.vfs.create("/etc/public", b"ok")
    kernel.vfs.create("/etc/secret", b"hush")


def test_denies_by_number(kernel):
    socket_program(kernel)
    sandbox = SeccompSandbox(kernel, deny=[Nr.socket]).install()
    process = spawn_and_run(kernel, "/bin/socktry")
    assert process.exit_status == (-Errno.EPERM) & 0xFF
    assert sandbox.denied[0][:2] == (process.pid, Nr.socket)


def test_covers_startup_without_injection(kernel):
    """The filter sees even loader-stub syscalls — no LD_PRELOAD needed."""
    socket_program(kernel)
    sandbox = SeccompSandbox(kernel, deny=[Nr.uname]).install()
    process = spawn_and_run(kernel, "/bin/socktry")
    # The stub's uname was denied during startup (and tolerated).
    assert any(nr == Nr.uname for _pid, nr, _args in sandbox.denied)
    assert process.exited


def test_refinement_sees_raw_values_only(kernel):
    """A value-based refinement works (fd numbers, flags)..."""
    builder = ProgramBuilder("/bin/writer")
    builder.string("m", "x")
    builder.start()
    builder.libc("write", 7, data_ref("m"), 1)  # fd 7: denied
    builder.libc("exit", RESULT)
    builder.register(kernel)
    sandbox = SeccompSandbox(kernel).refine(
        Nr.write, lambda args: args[0] == 7).install()
    process = spawn_and_run(kernel, "/bin/writer")
    assert process.exit_status == (-Errno.EPERM) & 0xFF


class TestExpressivenessGap:
    """§1's contrast: a *path-based* policy ("deny /etc/secret") is beyond
    seccomp (pointers are opaque) but trivial for an in-process hook."""

    def test_seccomp_cannot_distinguish_paths(self):
        kernel = Kernel(seed=74)
        two_file_program(kernel)
        # The best a filter can do with openat is judge raw pointer VALUES,
        # which are layout noise — both opens look identical in kind.
        sandbox = SeccompSandbox(kernel, deny=[]).install()
        process = spawn_and_run(kernel, "/bin/twofiles")
        # Both opens succeeded: the secret was NOT protectable by number.
        assert process.exit_status >= 3

    def test_hook_distinguishes_paths(self):
        kernel = Kernel(seed=75)
        two_file_program(kernel)

        def deny_secret(thread, nr, args, forward):
            if nr == Nr.openat:
                path = bytearray()
                space = thread.process.address_space
                while len(path) < 64:
                    byte = space.read_kernel(args[1] + len(path), 1)
                    if byte == b"\x00":
                        break
                    path += byte
                if bytes(path) == b"/etc/secret":
                    return -Errno.EACCES
            return forward()

        ZpolineInterposer(kernel, hook=deny_secret).install()
        process = spawn_and_run(kernel, "/bin/twofiles")
        assert process.exit_status == (-Errno.EACCES) & 0xFF


def test_no_signal_costs(kernel):
    from repro.cpu.cycles import Event

    socket_program(kernel)
    SeccompSandbox(kernel, deny=[Nr.socket]).install()
    spawn_and_run(kernel, "/bin/socktry")
    assert kernel.cycles.counts[Event.SIGNAL_DELIVERY] == 0
