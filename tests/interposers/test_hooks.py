"""Hook-library tests: tracing, counting, sandboxing, redirection, latency
injection, and composition — each exercised through a real interposer."""

import pytest

from repro.core import K23Interposer, OfflinePhase
from repro.core.offline import import_logs
from repro.interposers import ZpolineInterposer
from repro.interposers.hooks import (
    CountingHook,
    LatencyHook,
    RedirectHook,
    SandboxHook,
    TracingHook,
    chain,
    latency_hook,
)
from repro.kernel import Kernel
from repro.kernel.syscalls import Errno, Nr
from repro.workloads.programs import ProgramBuilder, RESULT, data_ref
from tests.simutil import make_hello, spawn_and_run


def run_with_hook(hook, builder_factory=make_hello, path="/usr/bin/hello",
                  seed=60, prepare=None):
    kernel = Kernel(seed=seed)
    builder_factory().register(kernel)
    if prepare:
        prepare(kernel)
    ZpolineInterposer(kernel, hook=hook).install()
    process = spawn_and_run(kernel, path)
    return kernel, process


class TestTracingHook:
    def test_records_forwarded_calls(self):
        hook = TracingHook()
        kernel, process = run_with_hook(hook)
        names = [name for _pid, name, _args, _result in hook.events]
        # `exit` never returns from forward(), so (as with real strace's
        # "exit(0) = ?") post-call hooks only see returning calls.
        assert names == ["write"]

    def test_formatted_output(self):
        hook = TracingHook()
        run_with_hook(hook)
        lines = hook.formatted()
        assert any("write(" in line for line in lines)


class TestCountingHook:
    def test_histogram(self):
        hook = CountingHook()

        def builder():
            b = ProgramBuilder("/usr/bin/hello")
            b.start()
            b.loop(5)
            b.libc("getpid")
            b.end_loop()
            b.exit(0)
            return b

        run_with_hook(hook, builder)
        assert hook.counts[Nr.getpid] == 5
        assert "getpid" in hook.summary()
        assert "total" in hook.summary()


class TestSandboxHook:
    def test_denylist_returns_errno(self):
        hook = SandboxHook(deny=[Nr.socket])

        def builder():
            b = ProgramBuilder("/usr/bin/hello")
            b.start()
            b.libc("socket", 2, 1, 0)
            b.libc("exit", RESULT)
            return b

        kernel, process = run_with_hook(hook, builder)
        assert process.exit_status == (-Errno.EPERM) & 0xFF
        assert hook.violations == [(process.pid, Nr.socket)]

    def test_allowlist_mode(self):
        hook = SandboxHook(allow_only=[Nr.write, Nr.exit, Nr.exit_group],
                           errno=Errno.EACCES)

        def builder():
            b = ProgramBuilder("/usr/bin/hello")
            b.string("m", "ok\n")
            b.start()
            b.libc("getpid")  # not allowlisted
            b.libc("write", 1, data_ref("m"), 3)
            b.exit(0)
            return b

        kernel, process = run_with_hook(hook, builder)
        assert process.exit_status == 0
        assert bytes(process.output) == b"ok\n"
        assert (process.pid, Nr.getpid) in hook.violations

    def test_kill_on_violation(self):
        hook = SandboxHook(deny=[Nr.socket], kill_on_violation=True)

        def builder():
            b = ProgramBuilder("/usr/bin/hello")
            b.start()
            b.libc("socket", 2, 1, 0)
            b.exit(0)
            return b

        kernel, process = run_with_hook(hook, builder)
        assert process.exited and process.exit_status != 0
        assert "sandbox violation" in getattr(process, "kill_detail", "")


class TestRedirectHook:
    def test_openat_path_rewritten(self):
        hook = RedirectHook({"/etc/target": "/etc/other!"[:11]})

        def builder():
            b = ProgramBuilder("/usr/bin/hello")
            b.string("p", "/etc/target")
            b.buffer("buf", 32)
            b.start()
            b.libc("openat", (1 << 64) - 100, data_ref("p"), 0)
            b.libc("read", RESULT, data_ref("buf"), 9)
            b.libc("write", 1, data_ref("buf"), 9)
            b.exit(0)
            return b

        def prepare(kernel):
            kernel.vfs.create("/etc/target", b"original!")
            kernel.vfs.create("/etc/other!", b"redirect!")

        kernel, process = run_with_hook(hook, builder, prepare=prepare)
        assert bytes(process.output) == b"redirect!"
        assert hook.redirections == [("/etc/target", "/etc/other!")]

    def test_rejects_growing_redirects(self):
        hook = RedirectHook({"/a": "/much/longer/path"})

        def builder():
            b = ProgramBuilder("/usr/bin/hello")
            b.string("p", "/a")
            b.start()
            b.libc("openat", (1 << 64) - 100, data_ref("p"), 0)
            b.exit(0)
            return b

        # The hook's ValueError surfaces as a hard failure of the run — a
        # configuration bug must never be silently absorbed.
        with pytest.raises(ValueError):
            run_with_hook(hook, builder)


class TestLatencyHook:
    def test_adds_cycles(self):
        quiet = CountingHook()
        kernel_a, _ = run_with_hook(quiet, seed=61)
        baseline = kernel_a.cycles.cycles
        hook = latency_hook([Nr.write], extra_cycles=50_000)
        kernel_b, _ = run_with_hook(hook, seed=61)
        assert kernel_b.cycles.cycles >= baseline + 50_000

    def test_failure_injection(self):
        hook = latency_hook([Nr.getpid], fail_every=2)

        def builder():
            b = ProgramBuilder("/usr/bin/hello")
            b.start()
            b.libc("getpid")   # ok
            b.libc("getpid")   # injected EINTR
            b.libc("exit", RESULT)
            return b

        kernel, process = run_with_hook(hook, builder)
        assert process.exit_status == (-Errno.EINTR) & 0xFF


class TestChain:
    def test_order_and_short_circuit(self):
        trace = TracingHook()
        sandbox = SandboxHook(deny=[Nr.socket])

        def builder():
            b = ProgramBuilder("/usr/bin/hello")
            b.start()
            b.libc("socket", 2, 1, 0)
            b.libc("getpid")
            b.exit(0)
            return b

        # Tracing wraps the sandbox: even denied calls get traced, with the
        # sandbox's verdict as their result.
        kernel, process = run_with_hook(chain(trace, sandbox), builder)
        traced = {name: result for _pid, name, _args, result in trace.events}
        assert traced["socket"] == -Errno.EPERM
        assert traced["getpid"] > 0

    def test_chain_requires_hooks(self):
        with pytest.raises(ValueError):
            chain()

    def test_chain_under_k23(self):
        offline_kernel = Kernel(seed=63)
        make_hello().register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run("/usr/bin/hello")
        kernel = Kernel(seed=64)
        make_hello().register(kernel)
        import_logs(kernel, offline.export())
        trace = TracingHook()
        count = CountingHook()
        K23Interposer(kernel, hook=chain(trace, count)).install()
        process = spawn_and_run(kernel, "/usr/bin/hello")
        assert process.exit_status == 0
        assert count.counts[Nr.write] == 1
        assert any(name == "write" for _p, name, _a, _r in trace.events)
