"""Interposer integration tests: coverage, mechanisms, and costs."""

import pytest

from repro.cpu.cycles import Event
from repro.interposers import (
    LazypolineInterposer,
    NullInterposer,
    PtraceInterposer,
    SudInterposer,
    ZpolineInterposer,
)
from repro.kernel import Kernel
from repro.kernel.syscalls import Nr
from repro.workloads.programs import ProgramBuilder, data_ref
from tests.simutil import make_hello, spawn_and_run


def run_under(interposer_cls, builder_fn=make_hello, path="/usr/bin/hello",
              seed=42, **kwargs):
    kernel = Kernel(seed=seed)
    builder_fn().register(kernel)
    interposer = interposer_cls(kernel, **kwargs).install()
    process = spawn_and_run(kernel, path)
    return kernel, interposer, process


def getpid_twice():
    builder = ProgramBuilder("/usr/bin/hello")
    builder.start()
    builder.libc("getpid")
    builder.libc("getpid")
    builder.exit(0)
    return builder


class TestZpoline:
    def test_output_preserved(self):
        kernel, zp, process = run_under(ZpolineInterposer)
        assert process.exit_status == 0
        assert bytes(process.output) == b"hello\n"

    def test_main_syscalls_interposed_via_rewrite(self):
        kernel, zp, process = run_under(ZpolineInterposer)
        vias = {via for _nr, via in zp.handled[process.pid]}
        assert vias == {"rewrite"}
        nrs = {nr for nr, _via in zp.handled[process.pid]}
        assert Nr.write in nrs and Nr.exit in nrs

    def test_libc_site_bytes_rewritten(self):
        kernel, zp, process = run_under(ZpolineInterposer)
        from repro.loader.libc import LIBC_PATH

        base, image, _ns = process.loaded_images[LIBC_PATH]
        site = base + image.syscall_sites["write.syscall"]
        assert process.address_space.read_kernel(site, 2) == b"\xff\xd0"

    def test_trampoline_mapped_at_zero(self):
        kernel, zp, process = run_under(ZpolineInterposer)
        assert process.address_space.is_mapped(0)
        region = process.address_space.region_at(0)
        assert region.name == "[trampoline]"

    def test_premain_syscalls_missed(self):
        """P2b: everything before the constructor escapes."""
        kernel, zp, process = run_under(ZpolineInterposer)
        missed = kernel.uninterposed_syscalls(process.pid)
        assert len(missed) >= 10  # the loader stub storm

    def test_ultra_bitmap_populated(self):
        kernel, zp, process = run_under(ZpolineInterposer, variant="ultra")
        state = process.interposer_state["zpoline"]
        assert len(state["bitmap"]) == len(state["rewritten"]) > 0

    def test_ultra_charges_bitmap_check(self):
        kernel, zp, process = run_under(ZpolineInterposer, variant="ultra")
        assert kernel.cycles.counts[Event.BITMAP_CHECK] > 0

    def test_default_skips_bitmap_check(self):
        kernel, zp, process = run_under(ZpolineInterposer, variant="default")
        assert kernel.cycles.counts[Event.BITMAP_CHECK] == 0

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            ZpolineInterposer(Kernel(), variant="turbo")


class TestLazypoline:
    def test_output_preserved(self):
        kernel, lp, process = run_under(LazypolineInterposer)
        assert process.exit_status == 0
        assert bytes(process.output) == b"hello\n"

    def test_first_call_sud_then_rewrite(self):
        kernel, lp, process = run_under(LazypolineInterposer,
                                        builder_fn=getpid_twice)
        getpids = [via for nr, via in lp.handled[process.pid]
                   if nr == Nr.getpid]
        assert getpids == ["sud", "rewrite"]

    def test_site_rewritten_after_first_execution(self):
        kernel, lp, process = run_under(LazypolineInterposer,
                                        builder_fn=getpid_twice)
        state = process.interposer_state["lazypoline"]
        assert state["rewritten"]
        site = state["rewritten"][0]
        assert process.address_space.read_kernel(site, 2) == b"\xff\xd0"

    def test_no_syscall_escapes_after_init(self):
        """lazypoline is exhaustive post-init (P2a fixed vs zpoline)."""
        kernel, lp, process = run_under(LazypolineInterposer)
        post_init_missed = [
            r for r in kernel.uninterposed_syscalls(process.pid)
        ]
        # Everything that escaped is pre-main loader-stub traffic.
        for record in post_init_missed:
            region = process.address_space.region_at(record.site)
            assert region is not None and region.name == "[ld.so]"

    def test_sud_armed_slowpath_charged(self):
        kernel, lp, process = run_under(LazypolineInterposer)
        assert kernel.cycles.counts[Event.SUD_ARMED_SLOWPATH] > 0


class TestSud:
    def test_all_main_syscalls_via_sud(self):
        kernel, sud, process = run_under(SudInterposer,
                                         builder_fn=getpid_twice)
        vias = {via for _nr, via in sud.handled[process.pid]}
        assert vias == {"sud"}

    def test_signal_costs_dominate(self):
        kernel, sud, process = run_under(SudInterposer)
        assert kernel.cycles.counts[Event.SIGNAL_DELIVERY] >= 2

    def test_no_interposition_variant_sees_nothing(self):
        kernel, sud, process = run_under(SudInterposer, interpose=False)
        assert process.exit_status == 0
        assert sud.handled_count(process.pid) == 0
        # ... but the armed slow path is still paid (Table 5's key insight).
        assert kernel.cycles.counts[Event.SUD_ARMED_SLOWPATH] > 0


class TestPtrace:
    def test_sees_premain_syscalls(self):
        """ptrace interposes from the first instruction (P2b fixed)."""
        kernel, pt, process = run_under(PtraceInterposer)
        assert pt.handled_count(process.pid) > 10
        # Nothing the app requested escaped.
        assert not kernel.uninterposed_syscalls(process.pid)

    def test_disables_vdso(self):
        kernel, pt, process = run_under(PtraceInterposer)
        assert not process.vdso_enabled
        assert "[vdso]" not in process.loaded_images

    def test_ptrace_stop_costs_charged(self):
        kernel, pt, process = run_under(PtraceInterposer)
        assert kernel.cycles.counts[Event.PTRACE_STOP] >= \
            2 * pt.handled_count(process.pid) - 2


class TestNative:
    def test_everything_uninterposed(self):
        kernel, native, process = run_under(NullInterposer)
        assert not native.handled
        app = kernel.app_requested_syscalls(process.pid)
        assert all(r.origin == "app" for r in app)


class TestBlockingUnderInterposers:
    """The restart protocol must work through every delivery path."""

    @pytest.mark.parametrize("interposer_cls", [
        NullInterposer, SudInterposer, ZpolineInterposer,
        LazypolineInterposer, PtraceInterposer,
    ])
    def test_echo_server_roundtrip(self, interposer_cls):
        from tests.kernel.test_net import echo_server

        kernel = Kernel(seed=7)
        echo_server(kernel, port=8080, requests=1)
        interposer = interposer_cls(kernel).install()
        process = kernel.spawn_process("/bin/echo1")
        kernel.run_process(process, max_steps=300_000)
        assert not process.exited, "server should be parked in accept"
        conn = kernel.net.connect(8080)
        conn.client_send(b"ping")
        kernel.run_process(process, max_steps=300_000)
        assert conn.client_recv_all() == b"ping"
        assert process.exited and process.exit_status == 0
