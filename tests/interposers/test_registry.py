"""Mechanism-registry tests: ordering, construction, metadata, errors."""

import pytest

from repro.core.k23 import K23Interposer
from repro.evaluation.runner import needs_offline
from repro.interposers import (
    REGISTRY,
    MechanismRegistry,
    MechanismSpec,
    NullInterposer,
    SudInterposer,
    UnknownMechanismError,
    ZpolineInterposer,
)
from repro.interposers.registry import BASELINE_EVENTS
from repro.kernel import Kernel

TABLE5_ORDER = (
    "native",
    "zpoline-default",
    "zpoline-ultra",
    "lazypoline",
    "K23-default",
    "K23-ultra",
    "K23-ultra+",
    "SUD-no-interposition",
    "SUD",
)


class TestCatalogue:
    def test_table5_order(self):
        assert REGISTRY.names() == TABLE5_ORDER

    def test_mechanisms_derived_from_registry(self):
        # The legacy runner aliases still resolve (through the
        # DeprecationWarning shim exercised in
        # tests/evaluation/test_deprecation.py) to the registry order.
        import repro.evaluation.runner as runner

        assert runner._MECHANISMS == REGISTRY.names()

    def test_needs_offline_only_k23(self):
        offline = {name for name in REGISTRY.names()
                   if REGISTRY.needs_offline(name)}
        assert offline == {"K23-default", "K23-ultra", "K23-ultra+"}

    def test_sud_armed_flags(self):
        armed = {spec.name for spec in REGISTRY if spec.arms_sud}
        assert armed == {"lazypoline", "K23-default", "K23-ultra",
                         "K23-ultra+", "SUD-no-interposition", "SUD"}

    def test_relevant_events_include_baseline(self):
        for spec in REGISTRY:
            assert set(BASELINE_EVENTS) <= set(spec.relevant_events)

    def test_hashset_check_only_on_ultra_variants(self):
        with_check = {spec.name for spec in REGISTRY
                      if "HASHSET_CHECK" in spec.cost_events}
        assert with_check == {"K23-ultra", "K23-ultra+"}

    def test_describe_lists_every_mechanism(self):
        text = REGISTRY.describe()
        for name in TABLE5_ORDER:
            assert name in text


class TestConstruction:
    def test_create_installs_by_default(self):
        kernel = Kernel(seed=3)
        interposer = REGISTRY.create("native", kernel)
        assert isinstance(interposer, NullInterposer)
        assert kernel.interposer is interposer

    def test_create_without_install(self):
        kernel = Kernel(seed=3)
        interposer = REGISTRY.create("zpoline-ultra", kernel, install=False)
        assert isinstance(interposer, ZpolineInterposer)
        assert interposer.variant == "ultra"
        assert kernel.interposer is not interposer

    def test_create_applies_variant_kwargs(self):
        kernel = Kernel(seed=3)
        k23 = REGISTRY.create("K23-ultra+", kernel, install=False)
        assert isinstance(k23, K23Interposer)
        assert k23.variant == "ultra+"
        sud = REGISTRY.create("SUD-no-interposition", kernel, install=False)
        assert isinstance(sud, SudInterposer)
        assert sud.interpose is False

    def test_create_passes_hook(self):
        events = []

        def hook(thread, nr, args, forward):
            events.append(nr)
            return forward()

        kernel = Kernel(seed=3)
        interposer = REGISTRY.create("SUD", kernel, hook=hook)
        assert interposer.hook is hook

    def test_unknown_name_lists_valid_mechanisms(self):
        with pytest.raises(UnknownMechanismError) as excinfo:
            REGISTRY.create("frobnicator", Kernel(seed=3))
        message = str(excinfo.value)
        assert "frobnicator" in message
        for name in TABLE5_ORDER:
            assert name in message

    def test_registry_create_delegates(self):
        kernel = Kernel(seed=3)
        interposer = REGISTRY.create("zpoline-default", kernel)
        assert isinstance(interposer, ZpolineInterposer)
        with pytest.raises(ValueError):
            REGISTRY.create("no-such-mechanism", Kernel(seed=3))


class TestMutation:
    def _registry_with_copy(self):
        registry = MechanismRegistry()
        for spec in REGISTRY:
            registry.register(spec)
        return registry

    def test_register_new_mechanism_appends(self):
        registry = self._registry_with_copy()
        registry.register(MechanismSpec(
            name="ptrace-everything",
            factory="repro.interposers.ptracer:PtraceInterposer",
            family="ptrace",
            description="ptrace from first instruction"))
        assert registry.names()[-1] == "ptrace-everything"
        kernel = Kernel(seed=3)
        interposer = registry.create("ptrace-everything", kernel,
                                     install=False)
        assert interposer.__class__.__name__ == "PtraceInterposer"

    def test_duplicate_registration_rejected(self):
        registry = self._registry_with_copy()
        with pytest.raises(ValueError):
            registry.register(MechanismSpec(
                name="SUD",
                factory="repro.interposers.sud_interposer:SudInterposer"))

    def test_replace_preserves_order(self):
        registry = self._registry_with_copy()
        replacement = MechanismSpec(
            name="lazypoline",
            factory="repro.interposers.lazypoline:LazypolineInterposer",
            description="replaced")
        registry.register(replacement, replace=True)
        assert registry.names() == TABLE5_ORDER
        assert registry.get("lazypoline").description == "replaced"

    def test_unregister(self):
        registry = self._registry_with_copy()
        registry.unregister("SUD")
        assert "SUD" not in registry
        with pytest.raises(UnknownMechanismError):
            registry.get("SUD")
