"""Rewrite-protocol tests: the safe protocol vs lazypoline's flaws (§4.5).

These pin down P5's three sub-claims at the unit level: permission
save/restore, store atomicity, and cross-core instruction-stream
invalidation.
"""

import pytest

from repro.interposers.zpoline import rewrite_site_safely
from repro.kernel import Kernel
from repro.memory.pages import PAGE_SIZE, Prot
from repro.workloads.programs import ProgramBuilder
from tests.simutil import make_hello, spawn_and_run


@pytest.fixture
def process_with_site(kernel):
    """A runnable process plus one syscall site on a dedicated page."""
    make_hello().register(kernel)
    process = spawn_and_run(kernel, "/usr/bin/hello")
    base = process.address_space.mmap(None, PAGE_SIZE,
                                      Prot.READ | Prot.WRITE, name="patch")
    process.address_space.write_kernel(base, b"\x0f\x05\xc3")
    return process, base


class TestSafeRewrite:
    def test_bytes_patched(self, kernel, process_with_site):
        process, site = process_with_site
        process.address_space.mprotect(site, PAGE_SIZE, Prot.READ | Prot.EXEC)
        rewrite_site_safely(kernel, process, site)
        assert process.address_space.read_kernel(site, 2) == b"\xff\xd0"

    def test_permissions_restored_exactly(self, kernel, process_with_site):
        """The save/restore half of the P5 fix: an execute-only (XOM-style)
        page must come back execute-only, not r-x."""
        process, site = process_with_site
        process.address_space.mprotect(site, PAGE_SIZE, Prot.EXEC)
        rewrite_site_safely(kernel, process, site)
        assert process.address_space.prot_at(site) == Prot.EXEC

    def test_cross_page_site_restores_both_pages(self, kernel):
        make_hello().register(kernel)
        process = spawn_and_run(kernel, "/usr/bin/hello")
        base = process.address_space.mmap(None, 2 * PAGE_SIZE,
                                          Prot.READ | Prot.WRITE,
                                          name="straddle")
        site = base + PAGE_SIZE - 1  # 0F on page 1, 05 on page 2
        process.address_space.write_kernel(site, b"\x0f\x05")
        process.address_space.mprotect(base, PAGE_SIZE, Prot.EXEC)
        process.address_space.mprotect(base + PAGE_SIZE, PAGE_SIZE,
                                       Prot.READ | Prot.EXEC)
        rewrite_site_safely(kernel, process, site)
        assert process.address_space.read_kernel(site, 2) == b"\xff\xd0"
        assert process.address_space.prot_at(base) == Prot.EXEC
        assert process.address_space.prot_at(base + PAGE_SIZE) == \
            Prot.READ | Prot.EXEC

    def test_all_core_icaches_invalidated(self, kernel, process_with_site):
        process, site = process_with_site
        process.address_space.mprotect(site, PAGE_SIZE, Prot.READ | Prot.EXEC)
        # Two threads have the old decode cached.
        second = process.spawn_thread()
        for thread in process.threads:
            thread.icache.fetch(site, process.address_space.read_kernel)
        rewrite_site_safely(kernel, process, site)
        for thread in process.threads:
            insn = thread.icache.fetch(site,
                                       process.address_space.read_kernel)
            assert insn.raw == b"\xff\xd0"


class TestLazypolineFlaws:
    def _lazypoline_rewrite(self, kernel, process, site):
        from repro.interposers.lazypoline import LazypolineInterposer

        interposer = LazypolineInterposer(kernel)
        process.interposer_state["lazypoline"] = {"selector": 0,
                                                  "rewritten": []}
        interposer._rewrite_lazily(process.main_thread, site)

    def test_permission_restore_clobbers_xom(self, kernel,
                                             process_with_site):
        """The flaw the safe protocol avoids: an execute-only page comes
        back readable (r-x), silently destroying its XOM property."""
        process, site = process_with_site
        process.address_space.mprotect(site, PAGE_SIZE, Prot.EXEC)
        kernel.torn_window_probability = 0.0
        self._lazypoline_rewrite(kernel, process, site)
        assert process.address_space.prot_at(site) == Prot.READ | Prot.EXEC

    def test_other_cores_keep_stale_decode(self, kernel, process_with_site):
        """No cross-core invalidation: a sibling core's cached decode
        survives the patch."""
        process, site = process_with_site
        process.address_space.mprotect(site, PAGE_SIZE, Prot.READ | Prot.EXEC)
        kernel.torn_window_probability = 0.0
        sibling = process.spawn_thread()
        stale = sibling.icache.fetch(site, process.address_space.read_kernel)
        assert stale.raw == b"\x0f\x05"
        self._lazypoline_rewrite(kernel, process, site)
        still = sibling.icache.fetch(site, process.address_space.read_kernel)
        assert still.raw == b"\x0f\x05"  # stale!
        # Memory, meanwhile, holds the new bytes.
        assert process.address_space.read_kernel(site, 2) == b"\xff\xd0"

    def test_writer_core_sees_its_own_patch(self, kernel, process_with_site):
        process, site = process_with_site
        process.address_space.mprotect(site, PAGE_SIZE, Prot.READ | Prot.EXEC)
        kernel.torn_window_probability = 0.0
        writer = process.main_thread
        writer.icache.fetch(site, process.address_space.read_kernel)
        self._lazypoline_rewrite(kernel, process, site)
        insn = writer.icache.fetch(site, process.address_space.read_kernel)
        assert insn.raw == b"\xff\xd0"  # local coherence holds
