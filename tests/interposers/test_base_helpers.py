"""Interposer framework-helper tests: LD_PRELOAD handling, trampoline
layout, restart helpers, selector machinery."""

import struct

import pytest

from repro.arch import decode
from repro.arch.isa import Mnemonic
from repro.arch.registers import Reg
from repro.interposers.base import (
    EMPTY_HOOK,
    SLED_SIZE,
    TRAMPOLINE_PKEY,
    TRAMPOLINE_TAIL_BYTES,
    install_trampoline,
    prepend_ld_preload,
    read_return_address,
    restart_from_trampoline,
    write_selector,
)
from repro.kernel import Kernel
from repro.memory.pages import PAGE_SIZE, Prot
from tests.simutil import make_hello, spawn_and_run


class TestPreload:
    def test_prepend_to_empty(self):
        env = {}
        prepend_ld_preload(env, "/opt/a.so")
        assert env["LD_PRELOAD"] == "/opt/a.so"

    def test_prepend_keeps_existing(self):
        env = {"LD_PRELOAD": "/opt/b.so"}
        prepend_ld_preload(env, "/opt/a.so")
        assert env["LD_PRELOAD"] == "/opt/a.so:/opt/b.so"

    def test_idempotent(self):
        env = {"LD_PRELOAD": "/opt/a.so:/opt/b.so"}
        prepend_ld_preload(env, "/opt/a.so")
        assert env["LD_PRELOAD"] == "/opt/a.so:/opt/b.so"

    def test_space_separated_form(self):
        env = {"LD_PRELOAD": "/opt/a.so /opt/b.so"}
        prepend_ld_preload(env, "/opt/c.so")
        entries = env["LD_PRELOAD"].split(":")
        assert entries[0] == "/opt/c.so"
        assert "/opt/a.so" in entries and "/opt/b.so" in entries


class TestTrampolineLayout:
    @pytest.fixture
    def process(self, kernel):
        make_hello().register(kernel)
        return spawn_and_run(kernel, "/usr/bin/hello")

    def test_fills_exactly_one_page(self, kernel, process):
        index = kernel.hostcalls.register(lambda thread: None, "t")
        tail = install_trampoline(kernel, process, index)
        assert tail == SLED_SIZE
        assert SLED_SIZE + TRAMPOLINE_TAIL_BYTES == PAGE_SIZE
        blob = process.address_space.read_kernel(0, PAGE_SIZE)
        assert blob[:SLED_SIZE] == b"\x90" * SLED_SIZE
        tail_insn = decode(blob, SLED_SIZE)
        assert tail_insn.mnemonic is Mnemonic.HOSTCALL
        assert decode(blob, SLED_SIZE + 5).mnemonic is Mnemonic.RET

    def test_xom_protection_applied(self, kernel, process):
        index = kernel.hostcalls.register(lambda thread: None, "t")
        install_trampoline(kernel, process, index)
        assert process.address_space.pkey_at(0) == TRAMPOLINE_PKEY
        # Threads' PKRU denies data access through the trampoline key.
        pkru = process.main_thread.context.pkru
        assert not pkru.permits(TRAMPOLINE_PKEY, "read")
        assert pkru.permits(TRAMPOLINE_PKEY, "exec")

    def test_without_xom(self, kernel, process):
        index = kernel.hostcalls.register(lambda thread: None, "t")
        install_trampoline(kernel, process, index, xom=False)
        assert process.address_space.pkey_at(0) == 0


class TestRestartHelpers:
    def test_read_return_address_and_restart(self, kernel):
        make_hello().register(kernel)
        process = spawn_and_run(kernel, "/usr/bin/hello")
        thread = process.main_thread
        stack = process.address_space.mmap(None, PAGE_SIZE,
                                           Prot.READ | Prot.WRITE)
        return_addr = 0x5000_1234
        rsp = stack + 512
        process.address_space.write_kernel(rsp,
                                           struct.pack("<Q", return_addr))
        thread.context.set(Reg.RSP, rsp)
        assert read_return_address(thread) == return_addr
        restart_from_trampoline(thread)
        assert thread.context.rip == return_addr - 2  # back on the site
        assert thread.context.get(Reg.RSP) == rsp + 8  # push undone


class TestSelector:
    def test_write_selector_charges_and_stores(self, kernel):
        from repro.cpu.cycles import Event

        make_hello().register(kernel)
        process = spawn_and_run(kernel, "/usr/bin/hello")
        from repro.interposers.base import allocate_selector_page

        selector = allocate_selector_page(kernel, process)
        before = kernel.cycles.counts[Event.SUD_SELECTOR_WRITE]
        write_selector(kernel, process, selector, 1)
        assert process.address_space.read_kernel(selector, 1) == b"\x01"
        assert kernel.cycles.counts[Event.SUD_SELECTOR_WRITE] == before + 1


def test_empty_hook_forwards():
    called = []
    result = EMPTY_HOOK(None, 1, [], lambda: called.append(1) or 7)
    assert result == 7 and called == [1]
