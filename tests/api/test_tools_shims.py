"""The repo-root ``tools/conformance.py`` shim: warn-once deprecation,
delegation through the unified CLI's shared-flag table."""

import importlib.util
import warnings
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def _load_shim():
    spec = importlib.util.spec_from_file_location(
        "conformance_shim", REPO / "tools" / "conformance.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_shim_delegates_and_warns(capsys):
    shim = _load_shim()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with pytest.raises(SystemExit) as exc:
            shim.main(["--help"])
    assert exc.value.code == 0
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    out = capsys.readouterr().out
    # The delegated parser is the real conformance tool's: shared flags
    # (--seed/--jobs) come from the same table as `python -m repro`.
    assert "--seed" in out and "--jobs" in out


def test_shim_warns_only_once():
    shim = _load_shim()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for _ in range(2):
            with pytest.raises(SystemExit):
                shim.main(["--help"])
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1


def test_shim_rejects_unknown_flags(capsys):
    shim = _load_shim()
    with pytest.raises(SystemExit) as exc:
        shim.main(["--definitely-not-a-flag"])
    assert exc.value.code == 2
    assert "unrecognized arguments" in capsys.readouterr().err
