"""The redesigned ``repro.api`` run surface: RunConfig → run → RunResult."""

import dataclasses

import pytest

from repro.api import (AnalyzerSuite, FaultSchedule, LatencyAnalyzer,
                       PitfallVerdict, RunConfig, RunResult, build_schedule,
                       prepare, run)


class TestRunConfigValidation:
    def test_mechanism_canonicalized_case_insensitively(self):
        assert RunConfig("k23-ultra", "stress").mechanism == "K23-ultra"
        assert RunConfig("LAZYPOLINE", "nginx").mechanism == "lazypoline"

    def test_unknown_mechanism_lists_valid_names(self):
        with pytest.raises(ValueError, match="native"):
            RunConfig("frobnicator", "stress")

    def test_unknown_workload_lists_valid_names(self):
        with pytest.raises(ValueError, match="stress"):
            RunConfig("native", "quake")

    def test_seed_must_be_a_non_negative_int(self):
        for bad in (-1, 1.5, "7", True):
            with pytest.raises(ValueError, match="seed"):
                RunConfig("native", "stress", seed=bad)

    def test_schedule_must_be_a_fault_schedule(self):
        with pytest.raises(ValueError, match="FaultSchedule"):
            RunConfig("native", "stress", schedule=42)
        config = RunConfig("native", "stress",
                           schedule=build_schedule(3))
        assert isinstance(config.schedule, FaultSchedule)

    def test_request_and_connection_bounds(self):
        with pytest.raises(ValueError, match="requests"):
            RunConfig("native", "nginx", requests=0)
        with pytest.raises(ValueError, match="connections"):
            RunConfig("native", "nginx", connections=0)

    def test_params_sorted_and_hashable(self):
        config = RunConfig("native", "nginx",
                           params=[("workers", 2), ("file_kb", 4)])
        assert config.params == (("file_kb", 4), ("workers", 2))
        hash(config)


class TestRunConfigRoundTrip:
    def test_replace_round_trips_equal(self):
        config = RunConfig("zpoline-ultra", "redis", seed=5,
                           params=(("io_threads", 1),))
        again = dataclasses.replace(config)
        assert again == config
        assert hash(again) == hash(config)

    def test_field_dict_reconstructs_the_config(self):
        config = RunConfig("K23-ultra", "nginx", seed=7, requests=8)
        fields = {f.name: getattr(config, f.name)
                  for f in dataclasses.fields(config)}
        assert RunConfig(**fields) == config

    def test_canonicalization_is_idempotent(self):
        lower = RunConfig("k23-ultra", "stress")
        canonical = RunConfig("K23-ultra", "stress")
        assert lower == canonical


class TestRun:
    def test_batch_run_result_shape(self):
        result = run(RunConfig("zpoline-default", "stress", seed=3,
                               params=(("iterations", 10),)))
        assert isinstance(result, RunResult)
        assert result.exit_status == 0
        assert result.ok
        assert result.cycles > 0
        assert result.counters["total_cycles"] > 0
        assert result.mechanism == "zpoline-default"

    def test_server_run_result_shape(self):
        result = run(RunConfig("lazypoline", "redis", seed=5, requests=6))
        assert result.exit_status is None
        assert result.requests == 6
        assert result.failures == 0
        assert result.ok

    def test_analyzers_become_verdicts(self):
        from repro.observability.analyzers import analyzer_for

        result = run(RunConfig("zpoline-default", "stress", seed=3,
                               params=(("iterations", 10),),
                               analyzers=(analyzer_for("P1a"),)))
        assert result.verdicts
        assert all(isinstance(v, PitfallVerdict) for v in result.verdicts)

    def test_trace_path_written_and_echoed(self, tmp_path):
        out = tmp_path / "run.trace.json"
        result = run(RunConfig("zpoline-default", "stress", seed=3,
                               params=(("iterations", 10),),
                               trace_path=str(out)))
        assert result.trace_path == str(out)
        assert out.exists()

    def test_fault_schedule_arms_an_injector(self):
        prepared = prepare(RunConfig("zpoline-default", "cat", seed=9,
                                     schedule=build_schedule(3)))
        assert prepared.injector is not None
        assert prepared.kernel.fault_injector is prepared.injector

    def test_same_config_is_deterministic(self):
        config = RunConfig("zpoline-default", "stress", seed=3,
                           params=(("iterations", 10),))
        assert run(config).cycles == run(config).cycles

    def test_suite_wraps_analyzers(self):
        prepared = prepare(RunConfig("native", "stress",
                                     analyzers=(LatencyAnalyzer(),)))
        assert isinstance(prepared.suite, AnalyzerSuite)
        assert prepared.suite["latency"] is not None
