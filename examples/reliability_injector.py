#!/usr/bin/env python3
"""Reliability testing via syscall fault injection (the §1 reliability
use-case family: TACHYON, Varan, MVEDSUa test software under perturbed
syscall behaviour).

Runs the sqlite speedtest workload three times under K23:

1. baseline (empty hook);
2. with +200k cycles of injected latency on every ``fdatasync`` (a slow
   disk) — throughput degrades but the run completes;
3. with every third ``write`` failing with EINTR — the workload's syscall
   results change visibly, demonstrating the injection surface a
   reliability harness builds on.

Run:  python examples/reliability_injector.py
"""

from repro.core import K23Interposer, OfflinePhase
from repro.core.offline import import_logs
from repro.interposers.hooks import CountingHook, chain, latency_hook
from repro.kernel import Kernel
from repro.kernel.syscalls import Errno, Nr
from repro.workloads.sqlite import install_sqlite


def run(hook=None, seed=12):
    offline_kernel = Kernel(seed=seed)
    install_sqlite(offline_kernel)
    offline = OfflinePhase(offline_kernel)
    offline.run("/usr/bin/speedtest1", max_steps=20_000_000)

    kernel = Kernel(seed=seed + 1)
    kernel.torn_window_probability = 0.0
    install_sqlite(kernel)
    import_logs(kernel, offline.export())
    K23Interposer(kernel, hook=hook).install()
    process = kernel.spawn_process("/usr/bin/speedtest1")
    before = kernel.cycles.cycles
    kernel.run_process(process, max_steps=20_000_000)
    assert process.exited, "workload must terminate"
    return process, kernel.cycles.cycles - before


def main() -> None:
    baseline, base_cycles = run()
    print(f"baseline           : exit {baseline.exit_status}, "
          f"{base_cycles:,} cycles")

    slow_disk = latency_hook([Nr.fdatasync], extra_cycles=200_000)
    counter = CountingHook()
    slow, slow_cycles = run(hook=chain(counter, slow_disk), seed=22)
    syncs = counter.counts[Nr.fdatasync]
    print(f"slow-disk fdatasync: exit {slow.exit_status}, "
          f"{slow_cycles:,} cycles "
          f"(+{slow_cycles - base_cycles:,}; {syncs} syncs injected)")
    assert slow.exit_status == 0
    assert slow_cycles >= base_cycles + syncs * 200_000

    flaky_writes = latency_hook([Nr.write], extra_cycles=0, fail_every=3)
    flaky, _cycles = run(hook=flaky_writes, seed=32)
    print(f"flaky writes (EINTR every 3rd): exit {flaky.exit_status} "
          f"(the workload does not retry: a reliability finding)")
    assert flaky.exited

    print("\nfault-injection surface verified: latency scales runtime "
          "exactly; spurious errors surface in workload behaviour.")


if __name__ == "__main__":
    main()
