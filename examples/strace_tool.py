#!/usr/bin/env python3
"""An strace-like tracer built on the interposer API — and a demonstration
of why the choice of mechanism decides what you can see.

The same tracing hook is attached to four interposers and pointed at a
program that exercises every blind spot from the paper's §4.2: startup
syscalls, a site hidden from static disassembly by embedded data, a
dlopen-loaded plugin, and a vDSO time call.  The coverage table that falls
out is the paper's P2a/P2b story in one screen.

Run:  python examples/strace_tool.py
"""

from repro.arch.registers import Reg
from repro.core import OfflinePhase
from repro.core.offline import import_logs
from repro.interposers import REGISTRY, PtraceInterposer
from repro.kernel import Kernel
from repro.kernel.syscalls import Nr
from repro.loader.image import SimImage
from repro.workloads.programs import ProgramBuilder, data_ref

TARGET = "/usr/bin/tricky"


def register_program(kernel) -> None:
    """A program with one representative of every §4.2 blind spot."""
    plugin = SimImage(name="/opt/tricky_plugin.so", entry="")
    plugin.asm.label("plugin_fn")
    plugin.asm.endbr64()
    plugin.asm.mov_ri(Reg.RAX, int(Nr.gettid))
    plugin.asm.mark("plugin_site")
    plugin.asm.syscall_()
    plugin.asm.ret()
    plugin.finalize()
    kernel.loader.register_image(plugin)

    builder = ProgramBuilder(TARGET, stub_profile=20)
    builder.string("plug", "/opt/tricky_plugin.so")
    builder.buffer("ts", 16)
    asm = builder.asm
    builder.start()
    builder.libc("getpid")                       # an ordinary libc call
    asm.jmp("hidden")                            # a site the sweep misses:
    asm.raw(b"\x48\xb8")                         # desync bait absorbs it
    asm.label("hidden")
    asm.mov_ri(Reg.RAX, int(Nr.getuid))
    asm.mark("hidden_site")
    asm.syscall_()
    asm.nop(8)
    builder.libc("dlopen", data_ref("plug"), 2)  # late-loaded code
    asm.call_reg(Reg.RAX)
    builder.libc("clock_gettime", 0, data_ref("ts"))  # vDSO fast path
    builder.exit(0)
    builder.register(kernel)


def strace_hook(events):
    """The interposition function: record, then forward."""

    def hook(thread, nr, args, forward):
        result = forward()
        events.append((Nr.name_of(nr), args[:3], result))
        return result

    return hook


def trace_under(name, make_interposer):
    kernel = Kernel(seed=4)
    register_program(kernel)
    events = []
    interposer = make_interposer(kernel, events)
    interposer.install()
    process = kernel.spawn_process(TARGET)
    kernel.run_process(process)
    missed = kernel.uninterposed_syscalls(process.pid)
    vdso_missed = [e for e in kernel.vdso_calls if e[0] == process.pid]

    def missed_in_ldso(record) -> bool:
        region = process.address_space.region_at(record.site)
        return region is not None and region.name == "[ld.so]"

    coverage = {
        "startup": not any(missed_in_ldso(r) for r in missed),
        "hidden": not any(r.nr == Nr.getuid for r in missed),
        "plugin": not any(r.nr == Nr.gettid for r in missed),
        "vdso": not vdso_missed,
    }
    return events, coverage


def main() -> None:
    def k23_factory(kernel, events):
        offline_kernel = Kernel(seed=5)
        register_program(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run(TARGET)
        import_logs(kernel, offline.export())
        return REGISTRY.create("K23-ultra", kernel,
                               hook=strace_hook(events), install=False)

    def registered(name):
        return lambda k, ev: REGISTRY.create(name, k, hook=strace_hook(ev),
                                             install=False)

    mechanisms = [
        ("zpoline", registered("zpoline-default")),
        ("lazypoline", registered("lazypoline")),
        # ptrace is outside the evaluated (registry) set — built directly.
        ("ptrace", lambda k, ev: PtraceInterposer(k, hook=strace_hook(ev))),
        ("K23", k23_factory),
    ]
    print(f"{'mechanism':<12} {'traced':>7}  startup  hidden  plugin  vdso")
    print("-" * 58)
    rows = {}
    for name, factory in mechanisms:
        events, coverage = trace_under(name, factory)
        rows[name] = coverage
        marks = "  ".join(
            f"{'yes' if coverage[key] else 'NO ':<6}"
            for key in ("startup", "hidden", "plugin", "vdso"))
        print(f"{name:<12} {len(events):>7}  {marks}")

    print("\nsample of the K23 trace (strace-style):")
    events, _ = trace_under("K23", k23_factory)
    for nr_name, args, result in events[:8]:
        arg_text = ", ".join(f"{a:#x}" for a in args)
        print(f"  {nr_name}({arg_text}) = {result}")

    assert all(rows["K23"].values()), "K23 must cover every blind spot"
    assert not rows["zpoline"]["hidden"], "zpoline misses the hidden site"
    print("\ncoverage matches the paper's P2a/P2b analysis.")


if __name__ == "__main__":
    main()
