#!/usr/bin/env python3
"""The full K23 two-phase workflow on a server workload (§5, Figure 2+4).

Phase 1 (offline, controlled machine): run nginx under libLogger with a
representative wrk workload; persist and seal the site log.

Phase 2 (online, production machine): install K23, start nginx, drive load,
and show the division of labour — ptrace for startup, the rewritten fast
path for the hot request-loop sites, the SUD fallback for everything the
offline run never saw — plus the performance cost relative to native.

Run:  python examples/offline_online_workflow.py
"""

from repro.core import OfflinePhase
from repro.core.logs import LOG_ROOT
from repro.core.offline import import_logs
from repro.interposers import REGISTRY
from repro.kernel import Kernel
from repro.kernel.syscalls import Nr
from repro.workloads.clients import wrk
from repro.workloads.nginx import NGINX_PORT, install_nginx

REQUESTS = 120


def drive(kernel, requests=REQUESTS):
    kernel.run(max_steps=1_000_000)  # master forks; worker reaches accept
    generator = wrk(kernel, NGINX_PORT, connections=1)
    generator.warmup(2)
    return generator.drive(requests)


def main() -> None:
    # ---------------------------------------------------------------- phase 1
    print("=== offline phase (controlled environment) ===")
    offline_kernel = Kernel(seed=10)
    path = install_nginx(offline_kernel, workers=1, file_size_kb=0)
    offline = OfflinePhase(offline_kernel)

    def offline_driver(kern, proc):
        kern.run(max_steps=600_000)
        generator = wrk(kern, NGINX_PORT, connections=1)
        generator.drive(16)
        generator.close()

    _proc, log = offline.run(path, driver=offline_driver,
                             max_steps=20_000_000)
    log_paths = offline.persist()
    print(f"logged {len(log)} unique syscall sites "
          f"(paper's Table 2: 43 for nginx)")
    print(f"log file: {log_paths[0]} (directory sealed immutable)")
    region_counts = {}
    for region, _off in log:
        region_counts[region] = region_counts.get(region, 0) + 1
    for region, count in sorted(region_counts.items()):
        print(f"  {count:>3} sites in {region}")

    # ---------------------------------------------------------------- phase 2
    print("\n=== online phase (production machine) ===")
    for name, with_k23 in (("native", False), ("K23-ultra", True)):
        kernel = Kernel(seed=11)
        kernel.torn_window_probability = 0.0
        install_nginx(kernel, workers=1, file_size_kb=0)
        if with_k23:
            import_logs(kernel, offline.export())
            k23 = REGISTRY.create("K23-ultra", kernel)
        server = kernel.spawn_process(path)
        result = drive(kernel)
        cpr = result.cycles_per_request
        print(f"\n{name}: {cpr:,.0f} cycles/request "
              f"({3.2e9 / cpr:,.0f} req/s at 3.2 GHz)")
        if with_k23:
            worker = next(p for p in kernel.processes.values()
                          if p.pid != server.pid)
            vias = {}
            for _nr, via in k23.handled.get(worker.pid, []):
                vias[via] = vias.get(via, 0) + 1
            startup = k23.startup_state(worker) or {}
            print(f"  ptrace stage     : "
                  f"{startup.get('startup_syscalls', 0)} startup syscalls, "
                  f"then detached")
            print(f"  rewritten sites  : {len(k23.rewritten_sites(worker))}")
            print(f"  fast-path calls  : {vias.get('rewrite', 0)}")
            print(f"  SUD fallbacks    : {vias.get('sud', 0)}")
            missed = kernel.uninterposed_syscalls(worker.pid)
            print(f"  missed syscalls  : {len(missed)}")
            assert not missed
            state = worker.interposer_state["k23"]
            print(f"  NULL-check state : hash set, "
                  f"{state['hashset'].memory_bytes} bytes "
                  f"(vs 16 TiB reserved for a bitmap)")


if __name__ == "__main__":
    main()
