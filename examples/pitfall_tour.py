#!/usr/bin/env python3
"""A guided tour of the System Call Interposition Pitfalls (§4, Table 3).

Runs every PoC (P1a–P5) against zpoline, lazypoline, and K23 and prints the
graded matrix with the evidence each verdict rests on — the reproduction of
the paper's Table 3.

Run:  python examples/pitfall_tour.py
"""

from repro.pitfalls import pitfall_matrix, render_table3
from repro.pitfalls.matrix import matches_paper

NARRATIVE = {
    "P1a": "empty-environment execve sheds LD_PRELOAD (Listing 1)",
    "P1b": "prctl(PR_SYS_DISPATCH_OFF) switches SUD off (Listing 2)",
    "P2a": "disassembly desync + dlopen'd code escape static rewriting",
    "P2b": "startup syscalls and vDSO calls predate/bypass the library",
    "P3a": "static rewriting corrupts data that resembles a syscall",
    "P3b": "hijacked control flow tricks the lazy rewriter into patching"
           " a partial instruction",
    "P4a": "a NULL code pointer silently executes the trampoline",
    "P4b": "the NULL-check bitmap reserves 16 TiB per process",
    "P5": "non-atomic patching races a sibling thread into a torn"
          " instruction",
}


def main() -> None:
    print("evaluating 9 pitfalls x 3 interposers (this runs 27 PoCs)...\n")
    outcomes = pitfall_matrix()
    print(render_table3(outcomes))
    print("\nY = handled / not applicable, X = pitfall present\n")
    for pitfall, story in NARRATIVE.items():
        print(f"{pitfall}: {story}")
        for outcome in outcomes:
            if outcome.pitfall == pitfall:
                verdict = "ok " if outcome.handled else "HIT"
                print(f"    {outcome.interposer:<11} {verdict} "
                      f"{outcome.evidence}")
        print()
    assert matches_paper(outcomes), "matrix must match the paper's Table 3"
    print("matrix matches the paper's Table 3 exactly.")


if __name__ == "__main__":
    main()
