#!/usr/bin/env python3
"""N-variant execution monitoring — the use case §4.2 builds its
exhaustiveness argument on (Bunshin, GHUMVEE, Orchestra, ...).

An N-variant engine runs diversified replicas of a program in lockstep and
cross-checks their *complete* system-call sequences; any divergence signals
memory corruption or a hijacked replica.  The check is only sound if the
monitor sees every syscall of every variant — a single blind spot means an
attacker can act in the window the monitor cannot see.

This example runs two ASLR-diversified variants of the same program and
cross-checks their syscall traces under (a) K23 and (b) zpoline:

- under K23 the monitor sees both variants' full sequences — including the
  startup syscalls — and they match call-for-call;
- under zpoline, the startup window is already invisible (the monitor
  compares only the tail), and worse: the "compromised" variant smuggles an
  extra open+read through a syscall site hidden from static disassembly by
  embedded data (P2a).  zpoline's monitor sees byte-identical sequences for
  the benign and compromised variants — the attack is invisible.  K23's
  monitor flags the divergence immediately.

Run:  python examples/nvariant_monitor.py
"""

from repro.core import K23Interposer, OfflinePhase
from repro.core.offline import import_logs
from repro.interposers import ZpolineInterposer
from repro.kernel import Kernel
from repro.kernel.syscalls import Nr
from repro.workloads.programs import ProgramBuilder, data_ref

TARGET = "/usr/bin/variant"


def register_variant(kernel, compromised: bool) -> None:
    """The protected program; the compromised build leaks /etc/secret
    through a syscall site hidden from static disassembly (the 48 B8 bait
    absorbs the mov+syscall into a phantom instruction — P2a)."""
    from repro.arch.registers import Reg

    builder = ProgramBuilder(TARGET, stub_profile=20)
    builder.string("msg", "variant output\n")
    builder.string("secret", "/etc/secret")
    builder.buffer("buf", 64)
    asm = builder.asm
    builder.start()
    if compromised:
        # Smuggled openat via the hidden site.
        asm.mov_ri(Reg.RDI, (1 << 64) - 100)
        asm.lea_rip_label(Reg.RSI, "secret")
        asm.xor_rr(Reg.RDX, Reg.RDX)
        asm.jmp("hidden")
        asm.raw(b"\x48\xb8")
        asm.label("hidden")
        asm.mov_ri(Reg.RAX, int(Nr.openat))
        asm.mark("smuggle_open")
        asm.syscall_()
        asm.nop(8)
        # Smuggled read through a second hidden site (same trick).
        asm.mov_rr(Reg.RDI, Reg.RAX)
        asm.lea_rip_label(Reg.RSI, "buf")
        asm.mov_ri(Reg.RDX, 64)
        asm.jmp("hidden2")
        asm.raw(b"\x48\xb8")
        asm.label("hidden2")
        asm.mov_ri(Reg.RAX, int(Nr.read))
        asm.mark("smuggle_read")
        asm.syscall_()
        asm.nop(8)
    builder.libc("getpid")
    builder.libc("write", 1, data_ref("msg"), 15)
    builder.exit(0)
    builder.register(kernel)


def monitored_trace(make_interposer, compromised: bool, seed: int):
    """Run one variant and return the syscall-number sequence its monitor
    observed (the interposer's handled log — what a cross-checker gets)."""
    kernel = Kernel(seed=seed)
    kernel.vfs.create("/etc/secret", b"hunter2")
    register_variant(kernel, compromised)
    interposer = make_interposer(kernel)
    interposer.install()
    process = kernel.spawn_process(TARGET)
    kernel.run_process(process)
    assert process.exit_status == 0
    return [nr for nr, _via in interposer.handled.get(process.pid, [])]


def main() -> None:
    def k23_factory(kernel):
        offline_kernel = Kernel(seed=90)
        offline_kernel.vfs.create("/etc/secret", b"hunter2")
        register_variant(offline_kernel, compromised=False)
        offline = OfflinePhase(offline_kernel)
        offline.run(TARGET)
        import_logs(kernel, offline.export())
        return K23Interposer(kernel)

    for name, factory in (("zpoline", ZpolineInterposer), ("K23", k23_factory)):
        benign_a = monitored_trace(factory, compromised=False, seed=91)
        benign_b = monitored_trace(factory, compromised=False, seed=92)
        evil = monitored_trace(factory, compromised=True, seed=93)
        lockstep_ok = benign_a == benign_b
        detected = evil != benign_a
        print(f"{name} monitor:")
        print(f"  calls visible per variant : {len(benign_a)}")
        print(f"  benign variants in lockstep: {'yes' if lockstep_ok else 'NO'}")
        print(f"  compromised variant caught : "
              f"{'yes - sequence diverged' if detected else 'NO - attack invisible'}")
        if name == "zpoline":
            assert lockstep_ok and not detected, \
                "zpoline's blind spot should hide the smuggled calls"
        else:
            assert lockstep_ok and detected
        print()
    print("exhaustive interposition is what makes N-variant checking sound.")


if __name__ == "__main__":
    main()
