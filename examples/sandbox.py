#!/usr/bin/env python3
"""A syscall-filtering sandbox built on K23.

Sandboxing is the use case the paper repeatedly calls out as *requiring*
exhaustive interposition (§1, §4.2): a filter with blind spots is not a
sandbox.  This example installs a deny-network policy as a K23 hook and
shows it holding against an application that tries to open a socket from
three different places:

1. through the ordinary libc wrapper,
2. through an inlined syscall instruction hidden from static disassembly,
3. after disabling SUD via prctl (the P1b bypass attempt — K23 aborts).

For contrast, the same policy on zpoline misses attempt 2 entirely: the
"sandboxed" program gets its socket.

Run:  python examples/sandbox.py
"""

from repro.arch.registers import Reg
from repro.core import K23Interposer, OfflinePhase
from repro.core.offline import import_logs
from repro.interposers import ZpolineInterposer
from repro.kernel import Kernel
from repro.kernel.syscalls import Errno, Nr
from repro.workloads.programs import ProgramBuilder, data_ref

NETWORK_SYSCALLS = {int(Nr.socket), int(Nr.connect), int(Nr.bind),
                    int(Nr.listen), int(Nr.accept)}

TARGET = "/usr/bin/escape-artist"


def deny_network_hook(violations):
    """The sandbox policy: network syscalls return -EPERM, rest forwarded."""

    def hook(thread, nr, args, forward):
        if nr in NETWORK_SYSCALLS:
            violations.append(Nr.name_of(nr))
            return -Errno.EPERM
        return forward()

    return hook


def register_program(kernel, with_prctl_escape: bool) -> None:
    builder = ProgramBuilder(TARGET)
    builder.string("ok", "socket fd acquired!\n")
    asm = builder.asm
    builder.start()
    # Attempt 1: plain libc socket().
    builder.libc("socket", 2, 1, 0)
    # Attempt 2: inlined socket syscall hidden behind a disassembly desync
    # (the 48 B8 bait absorbs the mov+syscall into a phantom instruction).
    asm.mov_ri(Reg.RDI, 2)
    asm.mov_ri(Reg.RSI, 1)
    asm.xor_rr(Reg.RDX, Reg.RDX)
    asm.jmp("hidden")
    asm.raw(b"\x48\xb8")
    asm.label("hidden")
    asm.mov_ri(Reg.RAX, int(Nr.socket))
    asm.mark("hidden_socket")
    asm.syscall_()
    asm.nop(8)
    # Did attempt 2 succeed?  fd >= 0 means the sandbox leaked.
    asm.cmp_ri(Reg.RAX, 0)
    asm.jl(".denied")
    builder.libc("write", 1, data_ref("ok"), 20)
    builder.label(".denied")
    if with_prctl_escape:
        # Attempt 3: switch the interposer off, then retry (P1b).
        from repro.kernel.syscalls import (
            PR_SET_SYSCALL_USER_DISPATCH,
            PR_SYS_DISPATCH_OFF,
        )

        builder.libc("prctl", PR_SET_SYSCALL_USER_DISPATCH,
                     PR_SYS_DISPATCH_OFF, 0, 0, 0)
        builder.libc("socket", 2, 1, 0)
    builder.exit(0)
    builder.register(kernel)


def run_sandboxed(make_interposer, with_prctl_escape: bool):
    kernel = Kernel(seed=6)
    register_program(kernel, with_prctl_escape)
    violations = []
    make_interposer(kernel, violations).install()
    process = kernel.spawn_process(TARGET)
    kernel.run_process(process)
    leaked = b"socket fd acquired!" in bytes(process.output)
    return violations, leaked, process


def main() -> None:
    def k23_factory(kernel, violations):
        offline_kernel = Kernel(seed=7)
        register_program(offline_kernel, with_prctl_escape=False)
        offline = OfflinePhase(offline_kernel)
        offline.run(TARGET)
        import_logs(kernel, offline.export())
        return K23Interposer(kernel, hook=deny_network_hook(violations),
                             variant="ultra")

    def zpoline_factory(kernel, violations):
        return ZpolineInterposer(kernel, hook=deny_network_hook(violations))

    print("zpoline sandbox:")
    violations, leaked, _ = run_sandboxed(zpoline_factory, False)
    print(f"  denied : {violations}")
    print(f"  leaked : {'YES - hidden site escaped the rewrite' if leaked else 'no'}")
    assert leaked, "zpoline should miss the hidden site (P2a)"

    print("\nK23 sandbox:")
    violations, leaked, _ = run_sandboxed(k23_factory, False)
    print(f"  denied : {violations}")
    print(f"  leaked : {'YES' if leaked else 'no'}")
    assert not leaked and violations == ["socket", "socket"]

    print("\nK23 sandbox vs prctl escape (P1b):")
    violations, leaked, process = run_sandboxed(k23_factory, True)
    print(f"  denied : {violations}")
    print(f"  process: killed "
          f"({getattr(process, 'kill_detail', '') or process.exit_status})")
    assert not leaked
    assert process.exit_status != 0, "escape attempt must be fatal"
    print("\nsandbox held on every path.")


if __name__ == "__main__":
    main()
