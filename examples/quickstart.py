#!/usr/bin/env python3
"""Quickstart: build a program, run it natively, then under K23.

Demonstrates the core public API in ~60 lines:

1. create a simulated machine (:class:`repro.kernel.Kernel`);
2. author a program with :class:`repro.workloads.programs.ProgramBuilder`;
3. run it natively and inspect the kernel's ground-truth syscall log;
4. run the K23 offline phase, install the interposer, and show that every
   application syscall — including the pre-main loader storm — is
   interposed.

Run:  python examples/quickstart.py
"""

from repro.core import OfflinePhase
from repro.core.offline import import_logs
from repro.interposers import REGISTRY
from repro.kernel import Kernel
from repro.kernel.syscalls import Nr
from repro.workloads.programs import ProgramBuilder, data_ref


def build_greeter(kernel) -> str:
    builder = ProgramBuilder("/usr/bin/greeter")
    builder.string("msg", "hello from the simulated machine\n")
    builder.start()
    builder.libc("getpid")
    builder.libc("write", 1, data_ref("msg"), 33)
    builder.exit(0)
    return builder.register(kernel).name


def main() -> None:
    # --- native run ---------------------------------------------------------
    kernel = Kernel(seed=1)
    path = build_greeter(kernel)
    process = kernel.spawn_process(path)
    kernel.run_process(process)
    print("native run:")
    print(f"  stdout          : {bytes(process.output)!r}")
    print(f"  exit status     : {process.exit_status}")
    trace = [Nr.name_of(r.nr) for r in kernel.app_requested_syscalls(process.pid)]
    print(f"  syscalls issued : {len(trace)} "
          f"(first five: {', '.join(trace[:5])} ...)")
    print(f"  pre-main (loader) syscalls: {process.premain_syscalls}")

    # --- K23 offline phase (separate controlled machine) ---------------------
    offline_kernel = Kernel(seed=2)
    build_greeter(offline_kernel)
    offline = OfflinePhase(offline_kernel)
    _proc, log = offline.run(path)
    print(f"\noffline phase: {len(log)} unique syscall sites logged")
    for region, offset in log:
        print(f"  {region},{offset}")

    # --- online run under K23 ------------------------------------------------
    online = Kernel(seed=3)
    build_greeter(online)
    import_logs(online, offline.export())
    k23 = REGISTRY.create("K23-ultra", online)
    process = online.spawn_process(path)
    online.run_process(process)
    print("\nK23 run:")
    print(f"  stdout          : {bytes(process.output)!r}")
    vias = {}
    for _nr, via in k23.handled[process.pid]:
        vias[via] = vias.get(via, 0) + 1
    print(f"  interposed via  : {vias}")
    missed = online.uninterposed_syscalls(process.pid)
    print(f"  missed syscalls : {len(missed)}")
    assert not missed, "K23 must interpose every application syscall"
    print("\nexhaustive interposition confirmed.")


if __name__ == "__main__":
    main()
