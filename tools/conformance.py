#!/usr/bin/env python3
"""Repo-root shim for the conformance CLI — deprecated entry point.

Thin warn-once delegator through ``repro.__main__``'s SUBCOMMANDS
dispatcher, so ``tools/conformance.py --seed 5 --jobs 2`` validates the
shared flags (``--seed``/``--jobs``/``--trace-out``) against the same
table as ``python -m repro conformance`` instead of drifting from it.
Prefer ``PYTHONPATH=src python -m repro conformance``.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

_WARNED = False


def main(argv=None):
    global _WARNED
    if not _WARNED:
        _WARNED = True
        import warnings

        warnings.warn(
            "tools/conformance.py is a deprecated shim; use "
            "`python -m repro conformance` (same flags, same behaviour)",
            DeprecationWarning, stacklevel=2)
    from repro.__main__ import main as repro_main

    argv = list(sys.argv[1:] if argv is None else argv)
    return repro_main(["conformance", *argv])


if __name__ == "__main__":
    raise SystemExit(main())
