#!/usr/bin/env python3
"""Repo-root shim for the conformance CLI.

Equivalent to ``PYTHONPATH=src python -m repro.tools.conformance``; exists
so ``tools/conformance.py --seeds 5`` works from a fresh checkout.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.tools.conformance import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
