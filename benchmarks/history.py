#!/usr/bin/env python
"""Bench history: append runs to a JSONL ledger and gate on regressions.

    PYTHONPATH=src python benchmarks/history.py append --report R.json
    PYTHONPATH=src python benchmarks/history.py gate [--threshold 10]
    PYTHONPATH=src python benchmarks/history.py show [--last N]

``append`` flattens a ``bench_interp_speed.py`` report (one JSON object,
see ``--json-out``) into one schema-versioned, machine-tagged line per
(workload, mode) cell and appends them to
``benchmarks/output/BENCH_history.jsonl``.

``gate`` groups the ledger by (workload, mode, protocol, machine node) —
numbers from different machines or protocols are never compared — and
fails (exit 1) when the newest entry of any group has ``insns_per_sec``
more than ``--threshold`` percent below the **rolling median** of up to
``--window`` prior entries.  The median makes the gate robust to a
single noisy historical run.  A group with fewer than ``MIN_SAMPLES``
entries gets an explicit ``SKIP`` verdict instead of a grade: a one- or
two-line group has no meaningful median, and every machine-tag or
protocol change starts such a warm-up group, so skipping (not failing,
not silently passing) is what keeps the gate honest across machine
migrations.  An empty ledger likewise SKIPs.  Malformed lines (missing
or non-numeric ``insns_per_sec``, absent workload/mode) are counted and
reported, never crash the gate.
"""

import argparse
import datetime
import json
import platform
import statistics
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Version of one ledger line's shape (bump on schema changes; gate
#: ignores lines whose version it does not know).
SCHEMA_VERSION = 1

DEFAULT_HISTORY = Path(__file__).resolve().parent / "output" \
    / "BENCH_history.jsonl"

#: Regression threshold, percent below the rolling median.
DEFAULT_THRESHOLD_PCT = 10.0

#: Rolling window: how many prior entries feed the median.
DEFAULT_WINDOW = 20

#: Minimum entries (latest + priors) a group needs before it is graded;
#: thinner groups — including every group freshly split off by a
#: machine-tag or protocol change — get an explicit SKIP verdict.
MIN_SAMPLES = 3


def machine_tag() -> Dict[str, str]:
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def entries_from_report(report: Dict,
                        timestamp: Optional[str] = None) -> List[Dict]:
    """Flatten one bench report into ledger lines (one per mode cell)."""
    timestamp = timestamp or datetime.datetime.now(
        datetime.timezone.utc).isoformat(timespec="seconds")
    machine = machine_tag()
    entries = []
    for workload, cells in sorted(report.get("workloads", {}).items()):
        for mode, cell in sorted(cells.items()):
            if not isinstance(cell, dict):  # speedup scalars live beside
                continue                    # the mode cells
            entries.append({
                "schema_version": SCHEMA_VERSION,
                "timestamp": timestamp,
                "machine": machine,
                "protocol": report.get("protocol", ""),
                "workload": workload,
                "mode": mode,
                "insns_per_sec": cell["insns_per_sec"],
                "sim_cycles": cell["sim_cycles"],
                "instructions": cell["instructions"],
            })
    return entries


def append_report(report: Dict, history_path: Path = DEFAULT_HISTORY,
                  timestamp: Optional[str] = None) -> List[Dict]:
    entries = entries_from_report(report, timestamp=timestamp)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with open(history_path, "a") as fh:
        for entry in entries:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entries


def load_history(history_path: Path = DEFAULT_HISTORY) -> List[Dict]:
    if not Path(history_path).exists():
        return []
    entries = []
    with open(history_path) as fh:
        for line in fh:
            if line.strip():
                entries.append(json.loads(line))
    return entries


def group_key(entry: Dict) -> Tuple:
    return (entry["workload"], entry["mode"], entry.get("protocol", ""),
            entry.get("machine", {}).get("node", ""))


def gate(entries: List[Dict], threshold_pct: float = DEFAULT_THRESHOLD_PCT,
         window: int = DEFAULT_WINDOW) -> Tuple[bool, List[str]]:
    """Grade the newest entry of every group against its rolling median.

    Returns ``(ok, report_lines)``; *ok* is False when any group's
    latest ``insns_per_sec`` is more than *threshold_pct* percent below
    the median of its (up to *window*) prior entries.  Groups with
    fewer than :data:`MIN_SAMPLES` entries are SKIPped, not graded —
    a SKIP never flips *ok*.
    """
    window = max(1, window)
    groups: Dict[Tuple, List[Dict]] = {}
    malformed = 0
    for entry in entries:
        if entry.get("schema_version") != SCHEMA_VERSION:
            continue
        if (not isinstance(entry.get("insns_per_sec"), (int, float))
                or isinstance(entry.get("insns_per_sec"), bool)
                or "workload" not in entry or "mode" not in entry):
            malformed += 1
            continue
        groups.setdefault(group_key(entry), []).append(entry)

    ok = True
    lines = []
    for key in sorted(groups, key=str):
        series = groups[key]
        label = f"{key[0]} [{key[1]}] @{key[3]}"
        latest = series[-1]
        if len(series) < MIN_SAMPLES:
            lines.append(
                f"SKIP {label}: {len(series)} sample(s), need "
                f"{MIN_SAMPLES} to gate (latest "
                f"{latest['insns_per_sec']:,} insns/sec; new "
                f"machine/protocol groups warm up before grading)")
            continue
        prior = series[:-1][-window:]
        median = statistics.median(e["insns_per_sec"] for e in prior)
        floor = median * (1 - threshold_pct / 100.0)
        measured = latest["insns_per_sec"]
        delta_pct = (measured - median) / median * 100.0
        if measured < floor:
            ok = False
            lines.append(
                f"FAIL {label}: {measured:,} insns/sec is "
                f"{-delta_pct:.1f}% below the rolling median "
                f"{median:,.0f} of {len(prior)} prior run(s) "
                f"(threshold {threshold_pct}%)")
        else:
            lines.append(
                f"PASS {label}: {measured:,} insns/sec vs median "
                f"{median:,.0f} ({delta_pct:+.1f}%, floor {floor:,.0f})")
    if malformed:
        lines.append(f"SKIP: ignored {malformed} malformed ledger "
                     f"line(s) (missing workload/mode or non-numeric "
                     f"insns_per_sec)")
    if not groups:
        lines.append("SKIP: history is empty, nothing to gate")
    return ok, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("command", choices=("append", "gate", "show"))
    parser.add_argument("--report", metavar="FILE",
                        help="append: bench report JSON "
                             "(bench_interp_speed.py --json-out)")
    parser.add_argument("--history", metavar="FILE", type=Path,
                        default=DEFAULT_HISTORY)
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD_PCT, metavar="PCT",
                        help="gate: max percent below the rolling median "
                             f"(default {DEFAULT_THRESHOLD_PCT})")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        metavar="N",
                        help="gate: prior entries feeding the median "
                             f"(default {DEFAULT_WINDOW})")
    parser.add_argument("--last", type=int, default=10, metavar="N",
                        help="show: entries to display (default 10)")
    args = parser.parse_args(argv)

    if args.command == "append":
        if not args.report:
            parser.error("append requires --report FILE")
        report = json.loads(Path(args.report).read_text())
        entries = append_report(report, history_path=args.history)
        print(f"appended {len(entries)} entr(ies) to {args.history}")
        return 0

    entries = load_history(args.history)
    if args.command == "show":
        for entry in entries[-args.last:]:
            print(f"{entry['timestamp']}  {entry['workload']:<18} "
                  f"{entry['mode']:<12} {entry['insns_per_sec']:>12,} "
                  f"insns/sec  @{entry.get('machine', {}).get('node', '?')}")
        print(f"-- {len(entries)} total entr(ies) in {args.history}")
        return 0

    ok, lines = gate(entries, threshold_pct=args.threshold,
                     window=args.window)
    for line in lines:
        print(line)
    print("gate:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
