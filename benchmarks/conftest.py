"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures, times the
regeneration with pytest-benchmark, sanity-checks the result against the
paper's reference values, and writes the rendered artifact to
``benchmarks/output/`` for inspection (the files EXPERIMENTS.md quotes).

The measurement matrices (Table 5/6) run through the parallel, memoized
evaluation pipeline (:mod:`repro.evaluation.pipeline`).  Knobs::

    pytest benchmarks/ --benchmark-only                 # full matrix
    pytest benchmarks/ --smoke                          # 2 mechanisms, tiny
    pytest benchmarks/ --eval-jobs 8                    # pool width
    pytest benchmarks/ --no-eval-cache                  # recompute all cells

``--smoke`` skips everything marked ``full_matrix`` and shrinks the
mechanism axis to :data:`repro.evaluation.pipeline.SMOKE_MECHANISMS`, so a
smoke pass finishes in seconds while the complete matrix stays opt-in.
"""

import os
import pathlib

import pytest

from repro.evaluation import pipeline as pipe
from repro.evaluation.cache import ResultCache
from repro.interposers.registry import REGISTRY

MECHANISMS = REGISTRY.names()

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def pytest_addoption(parser):
    group = parser.getgroup("evaluation pipeline")
    group.addoption("--smoke", action="store_true", default=False,
                    help="reduced matrix: 2 mechanisms, tiny iteration "
                         "counts; skips full_matrix benchmarks")
    group.addoption("--eval-jobs", type=int,
                    default=int(os.environ.get("REPRO_EVAL_JOBS",
                                               os.cpu_count() or 1)),
                    help="worker processes for evaluation cells")
    group.addoption("--no-eval-cache", action="store_true", default=False,
                    help="disable the content-addressed result cache")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "full_matrix: runs the complete mechanism/workload matrix "
        "(skipped under --smoke)")


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--smoke"):
        return
    skip = pytest.mark.skip(reason="full-matrix benchmark skipped by --smoke")
    for item in items:
        if "full_matrix" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def smoke(pytestconfig) -> bool:
    return pytestconfig.getoption("--smoke")


@pytest.fixture(scope="session")
def eval_jobs(pytestconfig) -> int:
    return max(1, pytestconfig.getoption("--eval-jobs"))


@pytest.fixture(scope="session")
def eval_cache(pytestconfig):
    if pytestconfig.getoption("--no-eval-cache"):
        return None
    return ResultCache()


@pytest.fixture(scope="session")
def bench_mechanisms(smoke):
    """The mechanism axis benchmarks measure this session."""
    return pipe.SMOKE_MECHANISMS if smoke else MECHANISMS


@pytest.fixture(scope="session")
def run_pipeline(eval_jobs, eval_cache):
    """Run a spec list through the pool with the session's jobs/cache."""

    def _run(specs):
        return pipe.run_cells(specs, jobs=eval_jobs, cache=eval_cache)

    return _run


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_artifact(artifact_dir, smoke):
    """Write a rendered artifact; smoke runs go to ``*.smoke.txt`` so a
    reduced matrix never overwrites the committed full-matrix files."""

    def _save(name: str, text: str) -> pathlib.Path:
        if smoke:
            stem, dot, suffix = name.rpartition(".")
            name = f"{stem}.smoke.{suffix}" if dot else f"{name}.smoke"
        path = artifact_dir / name
        path.write_text(text)
        return path

    return _save
