"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures, times the
regeneration with pytest-benchmark, sanity-checks the result against the
paper's reference values, and writes the rendered artifact to
``benchmarks/output/`` for inspection (the files EXPERIMENTS.md quotes).

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    def _save(name: str, text: str) -> pathlib.Path:
        path = artifact_dir / name
        path.write_text(text)
        return path

    return _save
