"""Figures 1–4 — regenerated from live simulator state."""

from repro.evaluation import figures


def test_figure1_misidentification(benchmark, save_artifact):
    text = benchmark(figures.figure1)
    save_artifact("figure1.txt", text)
    assert "2 valid" in text and "1 partial" in text and "2 data" in text


def test_figure2_offline_flow(benchmark, save_artifact):
    text = benchmark.pedantic(figures.figure2, rounds=1, iterations=1)
    save_artifact("figure2.txt", text)
    assert "libLogger" in text


def test_figure3_ls_log(benchmark, save_artifact):
    path, contents = benchmark.pedantic(figures.figure3, rounds=1,
                                        iterations=1)
    save_artifact("figure3.txt", f"{path}\n\n{contents}")
    assert len([l for l in contents.splitlines() if l]) == 10


def test_figure4_online_flow(benchmark, save_artifact):
    text = benchmark.pedantic(figures.figure4, rounds=1, iterations=1)
    save_artifact("figure4.txt", text)
    assert "ptracer:detach" in text
    assert "uninterposed             :     0" in text
