"""Ablation: NULL-execution check structures — bitmap vs robin-hood set.

The P4a/P4b design choice quantified: zpoline's bitmap probes in O(1) bit
operations but reserves span/8 bytes of virtual memory; K23's hash set is
bounded by the offline log but pays a hashed probe.  Sweeps the site count
to show both costs stay flat (the point of robin hood: bounded probe
lengths even as the table fills).
"""

import pytest

from repro.memory import AddressBitmap, RobinHoodSet

SITE_COUNTS = [7, 44, 92, 500]  # pwd … lighttpd … redis … stress-scale


def _sites(count: int):
    return [0x7F10_0000_0000 + index * 0x39 * 16 for index in range(count)]


@pytest.mark.parametrize("count", SITE_COUNTS)
def test_bitmap_probe_scaling(benchmark, count):
    bitmap = AddressBitmap()
    sites = _sites(count)
    for site in sites:
        bitmap.set(site)
    probe = sites[count // 2]
    assert benchmark(bitmap.test, probe)


@pytest.mark.parametrize("count", SITE_COUNTS)
def test_hashset_probe_scaling(benchmark, count):
    table = RobinHoodSet()
    sites = _sites(count)
    for site in sites:
        table.add(site)
    probe = sites[count // 2]
    assert benchmark(table.__contains__, probe)


def test_probe_length_stays_bounded(benchmark, save_artifact):
    lines = ["Ablation: check-structure footprint and probe length",
             f"{'sites':>6} {'bitmap reserved':>18} {'set bytes':>10} "
             f"{'avg probes':>11} {'max disp':>9}"]

    def sweep():
        rows = []
        for count in SITE_COUNTS:
            table = RobinHoodSet()
            bitmap = AddressBitmap()
            for site in _sites(count):
                table.add(site)
                bitmap.set(site)
            for site in _sites(count):
                assert site in table
            rows.append((count, bitmap.reserved_virtual_bytes,
                         table.memory_bytes, table.average_probe_length,
                         table.max_probe_distance))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for count, reserved, set_bytes, avg_probe, max_disp in rows:
        lines.append(f"{count:>6} {reserved:>18,} {set_bytes:>10,} "
                     f"{avg_probe:>11.2f} {max_disp:>9}")
        assert avg_probe < 3.0   # robin hood keeps lookups near-constant
        assert max_disp <= 16
        assert reserved == rows[0][1]  # bitmap reservation is size-blind
    save_artifact("ablation_checks.txt", "\n".join(lines))
