#!/usr/bin/env python
"""Span-tracing overhead gate: loadtest throughput with and without
``--spans``.

    PYTHONPATH=src python benchmarks/bench_span_overhead.py [--quick]
        [--assert-within PCT] [--history] [--json-out FILE]

Runs the same full-serve load test twice in one process — spans off,
then spans on — best of N rounds each, against a pre-warmed calibration
cache and with the evaluation result cache disabled, so the only
difference between the arms is the :class:`TraceContext` record path.
The gate fails (exit 1) when the spans-on requests/sec falls more than
``--assert-within`` percent (default 2) below the spans-off baseline
measured in the same invocation: per-request span assembly must stay in
the noise.

``--history`` appends both arms to ``benchmarks/output/
BENCH_history.jsonl`` under protocol ``span-overhead-v1`` (cells
``spans-off`` / ``spans-on``; ``insns_per_sec`` carries completed
requests per second, matching the ``loadtest-v1`` convention) and runs
the rolling-median regression gate on the ledger.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

HISTORY_PROTOCOL = "span-overhead-v1"
WORKLOAD = "redis"
SEED = 17


def _traffic(quick: bool, spans: bool):
    from repro.traffic.config import TrafficConfig

    return TrafficConfig(
        requests=200 if quick else 800,
        servers=2,
        connections=16,
        calibration_requests=10 if quick else 25,
        workers=2,
        ramp=(2, 6),
        serve_mode="full",
        spans=spans,
    )


def _measure(spans: bool, quick: bool, rounds: int) -> dict:
    from repro.evaluation.cache import NullCache
    from repro.traffic.engine import run_loadtest

    best = None
    completed = 0
    for _ in range(rounds):
        started = time.perf_counter()
        report = run_loadtest(["zpoline-default"], WORKLOAD,
                              _traffic(quick, spans), seed=SEED,
                              cache=NullCache())
        elapsed = time.perf_counter() - started
        completed = report.doc["mechanisms"]["zpoline-default"] \
            ["totals"]["completed"]
        if best is None or elapsed < best:
            best = elapsed
    return {
        "insns_per_sec": round(completed / best, 1),
        "sim_cycles": report.doc["schedule"]["span_ns"],
        "instructions": completed,
        "best_seconds": round(best, 4),
    }


def _warm_calibration(quick: bool) -> None:
    """One throwaway run so both arms see a hot in-process calibration
    cache (calibration cost would otherwise land only on the first arm)."""
    from repro.evaluation.cache import NullCache
    from repro.traffic.engine import run_loadtest

    import dataclasses

    warm = dataclasses.replace(_traffic(quick, spans=False), requests=40)
    run_loadtest(["zpoline-default"], WORKLOAD, warm, seed=SEED,
                 cache=NullCache())


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller load test, single round")
    parser.add_argument("--smoke", action="store_true",
                        help="CI alias for --quick")
    parser.add_argument("--assert-within", type=float, default=2.0,
                        metavar="PCT",
                        help="fail unless spans-on throughput is within "
                             "PCT%% of the same-process spans-off "
                             "baseline (default %(default)s)")
    parser.add_argument("--history", action="store_true",
                        help="append both arms to the bench history "
                             "ledger and run the regression gate")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="also write the report JSON to FILE")
    args = parser.parse_args(argv)
    quick = args.quick or args.smoke
    rounds = 1 if quick else 3

    print("warming calibration ...", file=sys.stderr)
    _warm_calibration(quick)

    cells = {}
    for label, spans in (("spans-off", False), ("spans-on", True)):
        print(f"{WORKLOAD} [{label}] ...", file=sys.stderr)
        cells[label] = _measure(spans, quick, rounds)
    off = cells["spans-off"]["insns_per_sec"]
    on = cells["spans-on"]["insns_per_sec"]
    cells["overhead_pct"] = round((off - on) / off * 100.0, 2) if off else 0.0

    report = {
        "protocol": HISTORY_PROTOCOL,
        "workloads": {WORKLOAD: cells},
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.json_out:
        Path(args.json_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")

    status = 0
    floor = off * (1 - args.assert_within / 100.0)
    verdict = "OK" if on >= floor else "REGRESSED"
    print(f"span overhead: {cells['overhead_pct']}% "
          f"({on:,} req/s with spans vs {off:,} without; floor "
          f"{floor:,.1f}, -{args.assert_within}%): {verdict}",
          file=sys.stderr)
    if on < floor:
        status = 1

    if args.history:
        from history import append_report, gate, load_history

        entries = append_report(report)
        print(f"history: appended {len(entries)} span-overhead rows "
              f"({HISTORY_PROTOCOL})", file=sys.stderr)
        ok, lines = gate(load_history())
        for line in lines:
            print(line, file=sys.stderr)
        if not ok:
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
