#!/usr/bin/env python
"""Interpreter throughput across the execution-engine tiers.

Standalone (not a pytest benchmark — wall-clock timing wants a quiet
process):

    PYTHONPATH=src python benchmarks/bench_interp_speed.py [--quick]

Runs two workloads under every engine tier, timing host wall-clock per
simulated instruction:

- ``single-step``  — ``REPRO_NO_BLOCK_CACHE=1`` reference interpreter;
- ``block-cache``  — ``REPRO_NO_CHAIN=1``: PR 2 behaviour, one block per
  dispatch round-trip;
- ``chain``        — ``REPRO_NO_SUPERBLOCK=1``: blocks linked across
  direct control flow, dispatcher skipped in steady state;
- ``superblock``   — ``REPRO_NO_TRACE_JIT=1``: hot chains stitched into
  single replay units with one batched INSTRUCTION charge;
- ``trace-jit``    — full engine: hottest superblocks compiled to
  ``exec``'d Python with the inline-cached single-page memory fast path.

Workloads:

- ``syscall-stress`` — the Table 5 microbenchmark loop (syscall-dense,
  short blocks, replay-heavy);
- ``sqlite speedtest1`` — the Table 6 runtime macro workload (longer
  straight-line runs, more memory traffic).

Each (workload, mode) cell reports best-of-N wall time, insns/sec, and
the final simulated cycle counter — which must be *identical* across all
five modes (every tier is a pure interpreter optimization; see
tests/cpu/test_engine.py and tests/properties/test_prop_lockstep.py).
A separate micro-bench times the address-space single-page fast path
with per-page generations against simulated global-generation eviction.
Results land in ``benchmarks/output/BENCH_interp.json``.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

OUTPUT = Path(__file__).resolve().parent / "output" / "BENCH_interp.json"

#: Seed-interpreter throughput on syscall-stress, measured on this host at
#: the PR 1 tip (commit 28346ac, before the dispatch-table refactor), with
#: the same best-of-3 protocol.  Kept for the acceptance-criterion ratio.
SEED_BASELINE_STRESS_IPS = 225_297

#: PR 2 block-cache throughput on syscall-stress (the recorded
#: BENCH_interp.json cell at the PR 2 tip).  The PR 7 engine gate is
#: >= 2x this number on the full trace-jit tier.
PR2_BASELINE_STRESS_IPS = 686_002

#: mode name -> escape hatch that selects it.  Each hatch disables its
#: tier *and* everything above it (EngineConfig enforces the hierarchy),
#: so setting exactly one variable pins exactly one tier.
MODES = {
    "single-step": "REPRO_NO_BLOCK_CACHE",
    "block-cache": "REPRO_NO_CHAIN",
    "chain": "REPRO_NO_SUPERBLOCK",
    "superblock": "REPRO_NO_TRACE_JIT",
    "trace-jit": None,
}

_HATCHES = tuple(var for var in MODES.values() if var)


def _run_stress(iterations):
    from repro.kernel.kernel import Kernel
    from repro.workloads.stress import STRESS_PATH, install_stress

    kernel = Kernel(seed=42)
    install_stress(kernel, iterations=iterations)
    process = kernel.spawn_process(STRESS_PATH)
    started = time.perf_counter()
    kernel.run_process(process, max_steps=40_000_000)
    elapsed = time.perf_counter() - started
    stats = kernel.interp_stats()
    return stats["instructions"], elapsed, kernel.cycles.cycles, stats


def _run_sqlite(transactions):
    from repro.evaluation.runner import build_speedtest1_with
    from repro.kernel.kernel import Kernel
    from repro.workloads.sqlite import install_sqlite

    kernel = Kernel(seed=30)
    kernel.torn_window_probability = 0.0
    install_sqlite(kernel)
    build_speedtest1_with(transactions).register(kernel)
    process = kernel.spawn_process("/usr/bin/speedtest1")
    started = time.perf_counter()
    kernel.run_process(process, max_steps=20_000_000)
    elapsed = time.perf_counter() - started
    if not process.exited or process.exit_status != 0:
        raise RuntimeError(f"sqlite exited {process.exit_status}")
    stats = kernel.interp_stats()
    return stats["instructions"], elapsed, kernel.cycles.cycles, stats


def _measure(fn, arg, mode, rounds):
    saved = {var: os.environ.pop(var, None) for var in _HATCHES}
    hatch = MODES[mode]
    if hatch is not None:
        os.environ[hatch] = "1"
    try:
        best = None
        for _ in range(rounds):
            insns, elapsed, cycles, stats = fn(arg)
            if best is None or elapsed < best[1]:
                best = (insns, elapsed, cycles, stats)
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
    insns, elapsed, cycles, stats = best
    fetches = stats["icache_hits"] + stats["icache_misses"]
    units = stats["block_hits"] + stats["block_installs"]
    return {
        "instructions": insns,
        "wall_seconds": round(elapsed, 4),
        "insns_per_sec": round(insns / elapsed),
        "sim_cycles": cycles,
        "icache_hit_rate": round(stats["icache_hits"] / fetches, 4)
        if fetches else None,
        "block_hit_rate": round(stats["block_hits"] / units, 4)
        if units else None,
        "chain_follows": stats["chain_follows"],
        "superblock_hits": stats["superblock_hits"],
        "trace_hits": stats["trace_hits"],
        "guard_fails": stats["guard_fails"],
    }


def _bench_addrspace(reads, rounds):
    """Per-page-generation win: a working set of hot pages read between
    bursts of unrelated cold mmap traffic.  With per-page generations the
    hot pages' memoized entries survive the cold mappings; the contrast
    run clears the memo table after every mmap, which is exactly what a
    global generation counter used to do to every cached translation.
    Only the hot reads are timed — the cold mmaps cost the same either
    way and would dilute the ratio."""
    from repro.memory.address_space import AddressSpace
    from repro.memory.pages import PAGE_SIZE, Prot

    hot_pages = 64
    groups = max(1, reads // hot_pages)

    def timed(evict_on_mmap):
        space = AddressSpace()
        base = space.mmap(None, hot_pages * PAGE_SIZE,
                          Prot.READ | Prot.WRITE)
        read = space.read
        total = 0.0
        for _ in range(groups):
            space.mmap(None, PAGE_SIZE, Prot.READ, name="[cold]")
            if evict_on_mmap:
                space._fast.clear()
            started = time.perf_counter()
            for page in range(hot_pages):
                read(base + page * PAGE_SIZE + 64, 8)
            total += time.perf_counter() - started
        return total

    timed_reads = groups * hot_pages
    best_per_page = min(timed(False) for _ in range(rounds))
    best_global = min(timed(True) for _ in range(rounds))
    return {
        "reads": timed_reads,
        "hot_pages": hot_pages,
        "cold_mmaps": groups,
        "per_page_gen_ns_per_read": round(
            best_per_page / timed_reads * 1e9, 1),
        "global_gen_ns_per_read": round(
            best_global / timed_reads * 1e9, 1),
        "speedup_per_page_vs_global": round(best_global / best_per_page, 3),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads, single round")
    parser.add_argument("--smoke", action="store_true",
                        help="CI alias for --quick")
    parser.add_argument("--assert-within", type=float, default=None,
                        metavar="PCT",
                        help="fail unless syscall-stress trace-jit "
                             "throughput is within PCT%% of the recorded "
                             "BENCH_interp.json baseline (the disabled-"
                             "bus overhead budget)")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="also write the report JSON to FILE (works in "
                             "--quick/--smoke mode, unlike the baseline "
                             "artifact)")
    parser.add_argument("--history", action="store_true",
                        help="append this run to benchmarks/output/"
                             "BENCH_history.jsonl (see history.py)")
    args = parser.parse_args(argv)
    quick = args.quick or args.smoke
    rounds = 1 if quick else 3
    # The stress loop needs enough trips to amortize warm-up (superblock
    # and JIT thresholds) the way real table-6 runs do.
    stress_iters = 500 if quick else 20_000
    sqlite_txns = 20 if quick else 120

    baseline_ips = None
    if args.assert_within is not None:
        if not OUTPUT.exists():
            raise SystemExit(f"--assert-within: no baseline at {OUTPUT}")
        recorded = json.loads(OUTPUT.read_text())
        baseline_ips = (recorded["workloads"]["syscall-stress"]
                        ["trace-jit"]["insns_per_sec"])

    workloads = {
        "syscall-stress": (_run_stress, stress_iters),
        "sqlite-speedtest1": (_run_sqlite, sqlite_txns),
    }
    report = {
        "protocol": f"best of {rounds} rounds, host wall clock, "
                    "5-tier engine matrix",
        "seed_baseline": {
            "workload": "syscall-stress",
            "insns_per_sec": SEED_BASELINE_STRESS_IPS,
            "commit": "28346ac (PR 1 tip, pre-dispatch-table interpreter)",
        },
        "pr2_baseline": {
            "workload": "syscall-stress",
            "insns_per_sec": PR2_BASELINE_STRESS_IPS,
            "note": "PR 2 block-cache tip; the engine gate is >= 2x this",
        },
        "workloads": {},
    }
    for name, (fn, arg) in workloads.items():
        cells = {}
        for mode in MODES:
            print(f"{name} [{mode}] ...", file=sys.stderr)
            cells[mode] = _measure(fn, arg, mode, rounds)
        sim_cycles = {mode: cells[mode]["sim_cycles"] for mode in MODES}
        if len(set(sim_cycles.values())) != 1:
            raise SystemExit(
                f"{name}: sim cycles diverged across tiers: {sim_cycles}")
        full = cells["trace-jit"]["insns_per_sec"]
        cells["speedup_trace_jit_vs_single_step"] = round(
            full / cells["single-step"]["insns_per_sec"], 3)
        cells["speedup_trace_jit_vs_block_cache"] = round(
            full / cells["block-cache"]["insns_per_sec"], 3)
        if name == "syscall-stress":
            cells["speedup_trace_jit_vs_seed"] = round(
                full / SEED_BASELINE_STRESS_IPS, 3)
            cells["speedup_trace_jit_vs_pr2"] = round(
                full / PR2_BASELINE_STRESS_IPS, 3)
        report["workloads"][name] = cells

    print("addrspace fast path ...", file=sys.stderr)
    report["addrspace_fast_path"] = _bench_addrspace(
        reads=5_000 if quick else 50_000, rounds=rounds)

    if not quick:
        # Quick/smoke numbers are for gating, not for the record: only the
        # full protocol may refresh the baseline artifact.
        OUTPUT.parent.mkdir(parents=True, exist_ok=True)
        OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True)
                          + "\n")
    if args.json_out:
        Path(args.json_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
    if args.history:
        from history import append_report

        entries = append_report(report)
        print(f"history: appended {len(entries)} entr(ies)",
              file=sys.stderr)
    print(json.dumps(report, indent=2, sort_keys=True))

    if baseline_ips is not None:
        if quick:
            # Smoke-sized cells are not comparable to the recorded
            # baseline (startup cost dominates short runs): re-measure
            # the budget cell under the baseline's own protocol.
            print("budget cell [full protocol] ...", file=sys.stderr)
            cell = _measure(_run_stress, 20_000, "trace-jit", 3)
        else:
            cell = report["workloads"]["syscall-stress"]["trace-jit"]
        measured = cell["insns_per_sec"]
        floor = baseline_ips * (1 - args.assert_within / 100.0)
        verdict = "OK" if measured >= floor else "REGRESSED"
        print(f"budget: {measured:,} insns/sec vs baseline "
              f"{baseline_ips:,} (floor {floor:,.0f}, "
              f"-{args.assert_within}%): {verdict}", file=sys.stderr)
        if measured < floor:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
