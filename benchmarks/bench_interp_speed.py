#!/usr/bin/env python
"""Interpreter throughput: block cache on vs off.

Standalone (not a pytest benchmark — wall-clock timing wants a quiet
process):

    PYTHONPATH=src python benchmarks/bench_interp_speed.py [--quick]

Runs two workloads under the block-cache interpreter and again under
``REPRO_NO_BLOCK_CACHE=1`` single-stepping, timing host wall-clock per
simulated instruction:

- ``syscall-stress`` — the Table 5 microbenchmark loop (syscall-dense,
  short blocks, replay-heavy);
- ``sqlite speedtest1`` — the Table 6 runtime macro workload (longer
  straight-line runs, more memory traffic).

Each (workload, mode) cell reports best-of-N wall time, insns/sec, and the
final simulated cycle counter — which must be *identical* across modes
(the cache is a pure interpreter optimization; see
tests/integration/test_block_equivalence.py).  Results land in
``benchmarks/output/BENCH_interp.json``.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

OUTPUT = Path(__file__).resolve().parent / "output" / "BENCH_interp.json"

#: Seed-interpreter throughput on syscall-stress, measured on this host at
#: the PR 1 tip (commit 28346ac, before the dispatch-table refactor), with
#: the same best-of-3 protocol.  Kept for the acceptance-criterion ratio.
SEED_BASELINE_STRESS_IPS = 225_297


def _run_stress(iterations):
    from repro.kernel.kernel import Kernel
    from repro.workloads.stress import STRESS_PATH, install_stress

    kernel = Kernel(seed=42)
    install_stress(kernel, iterations=iterations)
    process = kernel.spawn_process(STRESS_PATH)
    started = time.perf_counter()
    kernel.run_process(process, max_steps=20_000_000)
    elapsed = time.perf_counter() - started
    stats = kernel.interp_stats()
    return stats["instructions"], elapsed, kernel.cycles.cycles, stats


def _run_sqlite(transactions):
    from repro.evaluation.runner import build_speedtest1_with
    from repro.kernel.kernel import Kernel
    from repro.workloads.sqlite import install_sqlite

    kernel = Kernel(seed=30)
    kernel.torn_window_probability = 0.0
    install_sqlite(kernel)
    build_speedtest1_with(transactions).register(kernel)
    process = kernel.spawn_process("/usr/bin/speedtest1")
    started = time.perf_counter()
    kernel.run_process(process, max_steps=20_000_000)
    elapsed = time.perf_counter() - started
    if not process.exited or process.exit_status != 0:
        raise RuntimeError(f"sqlite exited {process.exit_status}")
    stats = kernel.interp_stats()
    return stats["instructions"], elapsed, kernel.cycles.cycles, stats


def _measure(fn, arg, mode, rounds):
    saved = os.environ.get("REPRO_NO_BLOCK_CACHE")
    os.environ.pop("REPRO_NO_BLOCK_CACHE", None)
    if mode == "single-step":
        os.environ["REPRO_NO_BLOCK_CACHE"] = "1"
    try:
        best = None
        for _ in range(rounds):
            insns, elapsed, cycles, stats = fn(arg)
            if best is None or elapsed < best[1]:
                best = (insns, elapsed, cycles, stats)
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_BLOCK_CACHE", None)
        else:
            os.environ["REPRO_NO_BLOCK_CACHE"] = saved
    insns, elapsed, cycles, stats = best
    fetches = stats["icache_hits"] + stats["icache_misses"]
    units = stats["block_hits"] + stats["block_installs"]
    return {
        "instructions": insns,
        "wall_seconds": round(elapsed, 4),
        "insns_per_sec": round(insns / elapsed),
        "sim_cycles": cycles,
        "icache_hit_rate": round(stats["icache_hits"] / fetches, 4)
        if fetches else None,
        "block_hit_rate": round(stats["block_hits"] / units, 4)
        if units else None,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads, single round")
    parser.add_argument("--smoke", action="store_true",
                        help="CI alias for --quick")
    parser.add_argument("--assert-within", type=float, default=None,
                        metavar="PCT",
                        help="fail unless syscall-stress block-cache "
                             "throughput is within PCT%% of the recorded "
                             "BENCH_interp.json baseline (the disabled-"
                             "bus overhead budget)")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="also write the report JSON to FILE (works in "
                             "--quick/--smoke mode, unlike the baseline "
                             "artifact)")
    parser.add_argument("--history", action="store_true",
                        help="append this run to benchmarks/output/"
                             "BENCH_history.jsonl (see history.py)")
    args = parser.parse_args(argv)
    quick = args.quick or args.smoke
    rounds = 1 if quick else 3
    stress_iters = 500 if quick else 4000
    sqlite_txns = 20 if quick else 120

    baseline_ips = None
    if args.assert_within is not None:
        if not OUTPUT.exists():
            raise SystemExit(f"--assert-within: no baseline at {OUTPUT}")
        recorded = json.loads(OUTPUT.read_text())
        baseline_ips = (recorded["workloads"]["syscall-stress"]
                        ["block-cache"]["insns_per_sec"])

    workloads = {
        "syscall-stress": (_run_stress, stress_iters),
        "sqlite-speedtest1": (_run_sqlite, sqlite_txns),
    }
    report = {
        "protocol": f"best of {rounds} rounds, host wall clock",
        "seed_baseline": {
            "workload": "syscall-stress",
            "insns_per_sec": SEED_BASELINE_STRESS_IPS,
            "commit": "28346ac (PR 1 tip, pre-dispatch-table interpreter)",
        },
        "workloads": {},
    }
    for name, (fn, arg) in workloads.items():
        cells = {}
        for mode in ("block-cache", "single-step"):
            print(f"{name} [{mode}] ...", file=sys.stderr)
            cells[mode] = _measure(fn, arg, mode, rounds)
        if cells["block-cache"]["sim_cycles"] != \
                cells["single-step"]["sim_cycles"]:
            raise SystemExit(f"{name}: sim cycles diverged between modes")
        cells["speedup_block_vs_single_step"] = round(
            cells["block-cache"]["insns_per_sec"]
            / cells["single-step"]["insns_per_sec"], 3)
        if name == "syscall-stress":
            cells["speedup_block_vs_seed"] = round(
                cells["block-cache"]["insns_per_sec"]
                / SEED_BASELINE_STRESS_IPS, 3)
        report["workloads"][name] = cells

    if not quick:
        # Quick/smoke numbers are for gating, not for the record: only the
        # full protocol may refresh the baseline artifact.
        OUTPUT.parent.mkdir(parents=True, exist_ok=True)
        OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True)
                          + "\n")
    if args.json_out:
        Path(args.json_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
    if args.history:
        from history import append_report

        entries = append_report(report)
        print(f"history: appended {len(entries)} entr(ies)",
              file=sys.stderr)
    print(json.dumps(report, indent=2, sort_keys=True))

    if baseline_ips is not None:
        if quick:
            # Smoke-sized cells are not comparable to the recorded
            # baseline (startup cost dominates short runs): re-measure
            # the budget cell under the baseline's own protocol.
            print("budget cell [full protocol] ...", file=sys.stderr)
            cell = _measure(_run_stress, 4000, "block-cache", 3)
        else:
            cell = report["workloads"]["syscall-stress"]["block-cache"]
        measured = cell["insns_per_sec"]
        floor = baseline_ips * (1 - args.assert_within / 100.0)
        verdict = "OK" if measured >= floor else "REGRESSED"
        print(f"budget: {measured:,} insns/sec vs baseline "
              f"{baseline_ips:,} (floor {floor:,.0f}, "
              f"-{args.assert_within}%): {verdict}", file=sys.stderr)
        if measured < floor:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
