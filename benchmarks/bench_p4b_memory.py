"""P4b — memory footprint of NULL-execution checking (§4.4 / §6.1).

Compares zpoline's whole-address-space bitmap against K23's bounded hash
set, and times the check primitives themselves (the runtime side of the
trade-off that separates zpoline-ultra's small delta from K23-ultra's in
Table 5).
"""

import pytest

from repro.memory import AddressBitmap, RobinHoodSet, TwoLevelTable
from repro.memory.pages import USER_VA_SIZE

SITES = [0x7F10_0000_0000 + index * 0x40 for index in range(92)]  # redis


@pytest.fixture
def bitmap():
    structure = AddressBitmap()
    for site in SITES:
        structure.set(site)
    return structure


@pytest.fixture
def hashset():
    structure = RobinHoodSet()
    for site in SITES:
        structure.add(site)
    return structure


def test_bitmap_check_speed(benchmark, bitmap):
    assert benchmark(bitmap.test, SITES[41])


def test_hashset_check_speed(benchmark, hashset):
    assert benchmark(hashset.__contains__, SITES[41])


@pytest.fixture
def twolevel():
    structure = TwoLevelTable()
    for site in SITES:
        structure.set(site)
    return structure


def test_twolevel_check_speed(benchmark, twolevel):
    """The zpoline authors' proposed alternative: one extra dependent load
    per check vs the flat bitmap."""
    assert benchmark(twolevel.test, SITES[41])


def test_footprint_comparison(benchmark, bitmap, hashset, twolevel,
                              save_artifact):
    report = (
        "P4b footprint (92 redis sites):\n"
        f"  zpoline bitmap  : {bitmap.reserved_virtual_bytes:>16,} B reserved "
        f"({bitmap.reserved_virtual_bytes / (1 << 40):.0f} TiB), "
        f"{bitmap.resident_bytes:,} B resident\n"
        f"  two-level table : {twolevel.reserved_virtual_bytes:>16,} B reserved "
        f"({twolevel.reserved_virtual_bytes / (1 << 20):.0f} MiB), "
        f"{twolevel.resident_bytes:,} B resident\n"
        f"  K23 hash set    : {hashset.memory_bytes:>16,} B total\n"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_artifact("p4b_memory.txt", report)
    assert bitmap.reserved_virtual_bytes == USER_VA_SIZE // 8
    assert twolevel.reserved_virtual_bytes < \
        bitmap.reserved_virtual_bytes / 100_000
    assert hashset.memory_bytes < 16 * 1024 < twolevel.reserved_virtual_bytes
