"""Table 3 — the pitfall matrix: zpoline / lazypoline / K23 vs P1a–P5."""

from repro.pitfalls import pitfall_matrix, render_table3
from repro.pitfalls.matrix import PAPER_TABLE3, matches_paper


def test_table3_matrix(benchmark, save_artifact):
    outcomes = benchmark.pedantic(pitfall_matrix, rounds=1, iterations=1)
    text = render_table3(outcomes, show_evidence=True)
    save_artifact("table3.txt", text)
    assert matches_paper(outcomes)
    # Every cell present: 9 pitfalls × 3 interposers.
    assert len(outcomes) == len(PAPER_TABLE3) * 3
