"""Table 2 — unique syscall sites logged during K23's offline phase.

Regenerates the per-program unique-(region, offset) counts for the five
coreutils and four applications, asserting exact agreement with the paper.
"""

import pytest

from repro.evaluation.experiments import run_table2
from repro.evaluation.tables import PAPER_TABLE2
from repro.core import OfflinePhase
from repro.kernel import Kernel
from repro.workloads.coreutils import TABLE2_COREUTILS, install_coreutils


def _coreutil_counts():
    kernel = Kernel(seed=12)
    paths = install_coreutils(kernel)
    offline = OfflinePhase(kernel)
    return {path: len(offline.run(path)[1]) for path in paths}


def test_table2_coreutils(benchmark):
    counts = benchmark.pedantic(_coreutil_counts, rounds=1, iterations=1)
    for path, count in counts.items():
        assert count == TABLE2_COREUTILS[path], path


def test_table2_full(benchmark, save_artifact):
    table = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_artifact("table2.txt", table)
    for base, expected in PAPER_TABLE2.items():
        assert f"{base:<19}| {expected:>13}" in table, (base, table)
