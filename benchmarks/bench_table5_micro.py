"""Table 5 — microbenchmark: syscall 500 under every mechanism.

Reproduces the paper's overhead factors relative to native execution and
asserts each is within 2 % of the published value, with the published
ordering intact.
"""

import pytest

from repro.evaluation.runner import MECHANISMS, measure_micro_cycles, micro_overheads
from repro.evaluation.tables import PAPER_TABLE5, render_table5


@pytest.fixture(scope="module")
def overheads():
    return micro_overheads()


def test_table5_render(benchmark, overheads, save_artifact):
    text = benchmark.pedantic(render_table5, args=(overheads,),
                              rounds=1, iterations=1)
    save_artifact("table5.txt", text)
    assert "SUD" in text


@pytest.mark.parametrize("mechanism", list(PAPER_TABLE5))
def test_table5_cell(benchmark, mechanism):
    per_call = benchmark.pedantic(
        measure_micro_cycles, args=(mechanism,), rounds=1, iterations=1)
    native = measure_micro_cycles("native")
    assert per_call / native == pytest.approx(PAPER_TABLE5[mechanism],
                                              rel=0.02)


def test_table5_ordering(benchmark, overheads):
    order = ["zpoline-default", "zpoline-ultra", "SUD-no-interposition",
             "K23-default", "lazypoline", "K23-ultra", "K23-ultra+", "SUD"]
    values = benchmark.pedantic(
        lambda: [overheads[name] for name in order], rounds=1, iterations=1)
    assert values == sorted(values)
