"""Table 5 — microbenchmark: syscall 500 under every mechanism.

Reproduces the paper's overhead factors relative to native execution and
asserts each is within 2 % of the published value, with the published
ordering intact.  Cells are produced by the parallel, memoized pipeline
(one cell per mechanism; see ``conftest.py`` for the ``--smoke``,
``--eval-jobs`` and ``--no-eval-cache`` knobs).
"""

import pytest

from repro.evaluation import pipeline as pipe
from repro.evaluation.tables import PAPER_TABLE5, render_table5


@pytest.fixture(scope="module")
def table5_run(run_pipeline, bench_mechanisms, smoke):
    if smoke:
        low, high = pipe.SMOKE_MICRO_ITERATIONS
        specs = pipe.micro_specs(bench_mechanisms, iterations_low=low,
                                 iterations_high=high)
    else:
        specs = pipe.micro_specs(bench_mechanisms)
    return run_pipeline(specs)


@pytest.fixture(scope="module")
def overheads(table5_run, bench_mechanisms):
    return pipe.table5_overheads(table5_run, bench_mechanisms[1:])


def test_table5_render(benchmark, overheads, save_artifact):
    text = benchmark.pedantic(render_table5, args=(overheads,),
                              rounds=1, iterations=1)
    save_artifact("table5.txt", text)
    assert overheads and all(name in text for name in overheads)


@pytest.mark.parametrize("mechanism", list(PAPER_TABLE5))
def test_table5_cell(benchmark, overheads, mechanism):
    if mechanism not in overheads:
        pytest.skip(f"{mechanism} outside the --smoke mechanism axis")
    factor = benchmark.pedantic(lambda: overheads[mechanism],
                                rounds=1, iterations=1)
    assert factor == pytest.approx(PAPER_TABLE5[mechanism], rel=0.02)


@pytest.mark.full_matrix
def test_table5_ordering(benchmark, overheads):
    order = ["zpoline-default", "zpoline-ultra", "SUD-no-interposition",
             "K23-default", "lazypoline", "K23-ultra", "K23-ultra+", "SUD"]
    values = benchmark.pedantic(
        lambda: [overheads[name] for name in order], rounds=1, iterations=1)
    assert values == sorted(values)


def test_table5_pipeline_accounting(table5_run, bench_mechanisms):
    """Every cell either hit the cache or was executed; none failed."""
    stats = table5_run.stats
    assert stats.cells == len(bench_mechanisms)
    assert stats.hits + stats.misses == stats.cells
    assert not table5_run.failures()
