"""Cycle decomposition of the Table 5 microbenchmark.

Turns §6.2.1's narrative analysis into measured tables: each mechanism's
steady-state per-call costs broken down by event, written as artifacts."""

import pytest

from repro.cpu.cycles import Event
from repro.evaluation.breakdown import (
    dominant_event,
    render_breakdown,
    run_decomposed,
)

MECHS = ("zpoline-default", "lazypoline", "K23-default", "K23-ultra", "SUD")


@pytest.mark.parametrize("name", MECHS)
def test_decompose(benchmark, name, save_artifact):
    breakdown = benchmark.pedantic(run_decomposed, args=(name,),
                                   rounds=1, iterations=1)
    save_artifact(f"decomposition_{name}.txt",
                  render_breakdown(name, breakdown))
    if name == "SUD":
        assert dominant_event(breakdown) in (Event.SIGNAL_DELIVERY,
                                             Event.SIGRETURN)
    if name.startswith("K23") or name == "lazypoline":
        assert Event.SUD_ARMED_SLOWPATH in breakdown
    if name == "K23-ultra":
        assert Event.HASHSET_CHECK in breakdown
