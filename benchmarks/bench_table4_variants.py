"""Table 4 — evaluated variants of zpoline and K23."""

from repro.core.config import K23_VARIANTS, ZPOLINE_VARIANTS, variant_table


def test_table4_variants(benchmark, save_artifact):
    text = benchmark(variant_table)
    save_artifact("table4.txt", text)
    assert len(ZPOLINE_VARIANTS) == 2
    assert len(K23_VARIANTS) == 3
    assert "NULL Execution Check & Stack Switch" in text
