"""Table 6 — macrobenchmarks: nginx, lighttpd, redis, sqlite.

One benchmark per row; each regenerates the row's native figure and every
mechanism's relative throughput (or relative runtime for sqlite), asserting
the paper's shape: native within 2 %, binary-rewriting interposers ≥ 95 %,
SUD within a few points of the published collapse.
"""

import pytest

from repro.evaluation.runner import MACRO_BY_KEY, MACRO_CONFIGS, macro_results
from repro.evaluation.tables import render_table6


@pytest.mark.parametrize("key", [config.key for config in MACRO_CONFIGS])
def test_table6_row(benchmark, key, save_artifact):
    config = MACRO_BY_KEY[key]
    results = benchmark.pedantic(macro_results, args=(config,),
                                 rounds=1, iterations=1)
    if config.paper_native:
        assert results["native"]["throughput"] == pytest.approx(
            config.paper_native, rel=0.02)
    for name, paper_pct in (config.paper_relative or {}).items():
        measured = results[name]["relative_pct"]
        if paper_pct > 90:
            assert measured == pytest.approx(paper_pct, abs=2.5), name
        else:
            # The SUD collapse: reproduce within 8 points.
            assert measured == pytest.approx(paper_pct, abs=8.0), name
    lines = [f"{key}:"]
    for name, result in results.items():
        lines.append(f"  {name:24s} {result['relative_pct']:7.2f}%")
    save_artifact(f"table6_{key}.txt", "\n".join(lines))


def test_table6_full_render(benchmark, save_artifact):
    from repro.evaluation.experiments import run_table6

    text = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    save_artifact("table6.txt", text)
    assert "geomean" in text
