"""Table 6 — macrobenchmarks: nginx, lighttpd, redis, sqlite.

One benchmark per row; each regenerates the row's native figure and every
mechanism's relative throughput (or relative runtime for sqlite), asserting
the paper's shape: native within 2 %, binary-rewriting interposers ≥ 95 %,
SUD within a few points of the published collapse.  All cells come from
the parallel, memoized pipeline; under ``--smoke`` only the reduced rows
and mechanisms run.
"""

import pytest

from repro.evaluation import pipeline as pipe
from repro.evaluation.runner import MACRO_BY_KEY, MACRO_CONFIGS
from repro.evaluation.tables import render_table6


@pytest.fixture(scope="module")
def bench_rows(smoke):
    if smoke:
        return list(pipe.SMOKE_MACRO_KEYS)
    return [config.key for config in MACRO_CONFIGS]


@pytest.fixture(scope="module")
def table6_run(run_pipeline, bench_rows, bench_mechanisms):
    return run_pipeline(pipe.macro_specs(bench_rows, bench_mechanisms))


@pytest.mark.parametrize("key", [config.key for config in MACRO_CONFIGS])
def test_table6_row(benchmark, key, table6_run, bench_rows,
                    bench_mechanisms, save_artifact):
    if key not in bench_rows:
        pytest.skip(f"{key} outside the --smoke row axis")
    config = MACRO_BY_KEY[key]
    row = benchmark.pedantic(
        lambda: pipe.table6_rows(table6_run, [key], bench_mechanisms)[0],
        rounds=1, iterations=1)
    if config.paper_native and row["native"] is not None:
        assert row["native"] == pytest.approx(config.paper_native, rel=0.02)
    for name, paper_pct in (config.paper_relative or {}).items():
        if name not in row["relative"]:
            continue  # outside the --smoke mechanism axis
        measured = row["relative"][name]
        if paper_pct > 90:
            assert measured == pytest.approx(paper_pct, abs=2.5), name
        else:
            # The SUD collapse: reproduce within 8 points.
            assert measured == pytest.approx(paper_pct, abs=8.0), name
    lines = [f"{key}:"]
    for name, pct in row["relative"].items():
        lines.append(f"  {name:24s} {pct:7.2f}%")
    save_artifact(f"table6_{key}.txt", "\n".join(lines))


@pytest.mark.full_matrix
def test_table6_full_render(benchmark, table6_run, bench_rows,
                            bench_mechanisms, save_artifact):
    text = benchmark.pedantic(
        lambda: render_table6(
            pipe.table6_rows(table6_run, bench_rows, bench_mechanisms)),
        rounds=1, iterations=1)
    save_artifact("table6.txt", text)
    assert "geomean" in text


def test_table6_pipeline_accounting(table6_run, bench_rows,
                                    bench_mechanisms):
    stats = table6_run.stats
    assert stats.cells == len(bench_rows) * len(bench_mechanisms)
    assert not table6_run.failures()
