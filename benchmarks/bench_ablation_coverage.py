"""Ablation: where each design stage's coverage comes from.

Decomposes K23's exhaustiveness on ``ls`` — which syscalls the ptrace
stage, the rewritten fast path, and the SUD fallback each caught — against
the blind spots of mechanisms missing those stages (§5.2's Table 1
narrative).  Also quantifies the §7 static-augmentation extension: fallback
rate with and without augmented logs on a partial-coverage run.
"""

import pytest

from repro.core import K23Interposer, OfflinePhase
from repro.core.offline import import_logs
from repro.core.static_augment import offline_with_augmentation
from repro.interposers import LazypolineInterposer, ZpolineInterposer
from repro.kernel import Kernel
from repro.workloads.coreutils import install_coreutils


def coverage_for(name, seed=71):
    offline_kernel = Kernel(seed=seed)
    install_coreutils(offline_kernel, names=["/usr/bin/ls"])
    offline = OfflinePhase(offline_kernel)
    offline.run("/usr/bin/ls")

    kernel = Kernel(seed=seed + 1)
    install_coreutils(kernel, names=["/usr/bin/ls"])
    if name == "K23":
        import_logs(kernel, offline.export())
        interposer = K23Interposer(kernel, variant="ultra")
    elif name == "zpoline":
        interposer = ZpolineInterposer(kernel)
    else:
        interposer = LazypolineInterposer(kernel)
    interposer.install()
    process = kernel.spawn_process("/usr/bin/ls")
    kernel.run_process(process)
    assert process.exit_status == 0
    vias = {}
    for _nr, via in interposer.handled.get(process.pid, []):
        vias[via] = vias.get(via, 0) + 1
    vias["missed"] = len(kernel.uninterposed_syscalls(process.pid))
    vias["total"] = len(kernel.app_requested_syscalls(process.pid))
    return vias


def test_stage_coverage_decomposition(benchmark, save_artifact):
    def sweep():
        return {name: coverage_for(name)
                for name in ("K23", "zpoline", "lazypoline")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: per-stage coverage on ls (app-requested syscalls)",
             f"{'mechanism':<12} {'total':>6} {'ptrace':>7} {'rewrite':>8} "
             f"{'sud':>5} {'missed':>7}"]
    for name, vias in results.items():
        lines.append(f"{name:<12} {vias['total']:>6} "
                     f"{vias.get('ptrace', 0):>7} "
                     f"{vias.get('rewrite', 0):>8} "
                     f"{vias.get('sud', 0):>5} {vias['missed']:>7}")
    save_artifact("ablation_coverage.txt", "\n".join(lines))
    assert results["K23"]["missed"] == 0
    assert results["K23"].get("ptrace", 0) > 100   # the startup storm
    assert results["zpoline"]["missed"] > 100      # ... which others drop
    assert results["lazypoline"]["missed"] > 100


def test_augmentation_reduces_fallback_rate(benchmark, save_artifact):
    """§7 extension: static augmentation moves unexercised-but-provable
    sites onto the fast path."""
    from repro.workloads.programs import ProgramBuilder, data_ref

    def register(kernel):
        builder = ProgramBuilder("/usr/bin/rare2")
        builder.string("flag", "/etc/rare-mode")
        builder.start()
        builder.libc("access", data_ref("flag"), 0)
        from repro.arch.registers import Reg

        builder.asm.test_rr(Reg.RAX, Reg.RAX)
        builder.asm.jne(".common")
        builder.loop(40)
        builder.libc("getuid")
        builder.end_loop()
        builder.label(".common")
        builder.libc("getpid")
        builder.exit(0)
        builder.register(kernel)

    def run(augment: bool):
        offline_kernel = Kernel(seed=81)
        register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        if augment:
            offline_with_augmentation(offline, "/usr/bin/rare2")
        else:
            offline.run("/usr/bin/rare2")
        kernel = Kernel(seed=82)
        register(kernel)
        kernel.vfs.create("/etc/rare-mode", b"")
        import_logs(kernel, offline.export())
        k23 = K23Interposer(kernel).install()
        process = kernel.spawn_process("/usr/bin/rare2")
        kernel.run_process(process)
        assert process.exit_status == 0
        entries = k23.handled[process.pid]
        fallback = sum(1 for _nr, via in entries if via == "sud")
        return fallback, len(entries)

    def sweep():
        return run(False), run(True)

    (plain_fb, plain_total), (aug_fb, aug_total) = benchmark.pedantic(
        sweep, rounds=1, iterations=1)
    report = (
        "Ablation: SUD-fallback rate, rare code path (40 unlogged calls)\n"
        f"  dynamic log only : {plain_fb}/{plain_total} calls on fallback\n"
        f"  + static augment : {aug_fb}/{aug_total} calls on fallback\n"
    )
    save_artifact("ablation_augment.txt", report)
    assert plain_fb >= 40
    assert aug_fb == 0
