"""Ablation: what the offline phase buys (§5.1 vs §5.2).

K23's fast path exists only for offline-logged sites; everything else takes
the SUD fallback.  Running the microbenchmark with an *empty* log shows the
other end of the spectrum: per-call cost collapses toward pure SUD, which
is exactly why the hybrid design needs the offline phase for datacenter
workloads (and why the fallback alone still guarantees correctness).
"""

import pytest

from repro.core import K23Interposer
from repro.core.logs import SiteLog, seal_logs
from repro.evaluation.runner import measure_micro_cycles
from repro.kernel import Kernel
from repro.workloads.stress import STRESS_PATH, build_stress


def _k23_empty_log_cycles(iterations: int, seed: int = 61) -> int:
    kernel = Kernel(seed=seed)
    kernel.torn_window_probability = 0.0
    build_stress(iterations).register(kernel)
    SiteLog(STRESS_PATH).save(kernel.vfs)  # empty: nothing pre-validated
    seal_logs(kernel.vfs)
    K23Interposer(kernel, variant="default").install()
    process = kernel.spawn_process(STRESS_PATH)
    before = kernel.cycles.cycles
    kernel.run_process(process, max_steps=50_000_000)
    assert process.exit_status == 0
    return kernel.cycles.cycles - before


def measure_empty_log_per_call() -> float:
    low = _k23_empty_log_cycles(300)
    high = _k23_empty_log_cycles(1500)
    return (high - low) / 1200


def test_offline_phase_value(benchmark, save_artifact):
    empty = benchmark.pedantic(measure_empty_log_per_call, rounds=1,
                               iterations=1)
    native = measure_micro_cycles("native")
    logged = measure_micro_cycles("K23-default")
    sud = measure_micro_cycles("SUD")
    report = (
        "Ablation: K23 per-syscall cost vs offline-log coverage\n"
        f"  native                   : {native:8.1f} cycles (1.00x)\n"
        f"  K23, full offline log    : {logged:8.1f} cycles "
        f"({logged / native:.2f}x)  <- every site rewritten\n"
        f"  K23, EMPTY offline log   : {empty:8.1f} cycles "
        f"({empty / native:.2f}x)  <- all calls via SUD fallback\n"
        f"  pure SUD                 : {sud:8.1f} cycles "
        f"({sud / native:.2f}x)\n"
    )
    save_artifact("ablation_offline_value.txt", report)
    # With the log, K23 sits near zpoline; without it, near pure SUD.
    assert logged / native < 1.4
    assert empty / native > 10.0
    assert empty <= sud * 1.05  # fallback ≈ SUD, never worse than ~5%
