"""§7 portability analysis: discovery quality on fixed- vs variable-length
encodings (the ARM-porting direction)."""

from repro.arch import Asm
from repro.arch.arm64 import (
    A64Builder,
    SVC_0,
    compare_discovery,
    find_svc_sites,
    movz,
    rewrite_feasibility,
    sweep,
)
from repro.arch.registers import Reg


def build_pair():
    """Equivalent programs on both encodings, each with one hidden hazard."""
    x86 = Asm()
    x86.mov_ri(Reg.RAX, 39)
    x86.mark("visible")
    x86.syscall_()
    x86.jmp("hidden")
    x86.raw(b"\x48\xb8")
    x86.label("hidden")
    x86.mov_ri(Reg.RAX, 102)
    x86.mark("hidden_site")
    x86.syscall_()
    x86.nop(8)
    x86.ret()

    a64 = A64Builder()
    a64.emit(movz(8, 39))
    a64.svc()
    a64.word_data(SVC_0)  # literal equal to the trap encoding
    a64.emit(movz(8, 102))
    a64.svc()
    a64.ret()
    return x86, a64


def test_discovery_comparison(benchmark, save_artifact):
    x86, a64 = build_pair()

    def analyze():
        return compare_discovery(
            x86.assemble(),
            [x86.marks["visible"], x86.marks["hidden_site"]], a64)

    report = benchmark.pedantic(analyze, rounds=1, iterations=1)
    feasibility = rewrite_feasibility(a64.assemble())
    report += (
        f"\n\nrewrite feasibility on A64: width match = "
        f"{feasibility['replacement_width_matches']}, branch range = "
        f"{feasibility['branch_range_bytes'] // (1 << 20)} MiB, "
        f"NULL-page trampoline needed = "
        f"{feasibility['needs_null_trampoline']}")
    save_artifact("arm64_portability.txt", report)
    assert "1/2 true sites found" in report
    assert "2/2 true sites found" in report


def test_fixed_width_sweep_speed(benchmark):
    a64 = A64Builder()
    for index in range(512):
        a64.emit(movz(8, index))
        if index % 7 == 0:
            a64.svc()
    code = a64.assemble()
    sites = benchmark(find_svc_sites, code)
    assert len(sites) == len(a64.svc_sites)


def test_every_word_classifies(benchmark):
    a64 = A64Builder()
    a64.nop(64)
    a64.svc()
    a64.ret()
    insns = benchmark(lambda: list(sweep(a64.assemble())))
    assert sum(1 for insn in insns if insn.is_svc) == 1
