"""Sensitivity sweep — robustness of the reproduced conclusions.

Perturbs every calibrated cycle-model constant by 0.5×–2× and re-derives
the microbenchmark; the paper's ordering invariants (zpoline fastest,
K23-default < lazypoline, the armed-SUD floor, the SUD collapse) must hold
at every point.  See ``repro/evaluation/sensitivity.py``.
"""

from repro.evaluation.sensitivity import render_sweep, sweep


def test_sensitivity_sweep(benchmark, save_artifact):
    results = benchmark(sweep)
    text = render_sweep(results)
    save_artifact("sensitivity.txt", text)
    assert all(not violations for _e, _m, violations in results)
